// U-Topk semantics (Soliman et al. [42]): the most likely top-k set.
//
// Conceptually, extract the ranked top-k list of every possible world and
// report the list with the highest total probability. The paper
// shows it can be completely disjoint between k and k+1 (its containment
// counterexamples, Figs. 2 and 4) and can hold fewer than k tuples when
// small worlds dominate.
//
// Algorithms:
//   * TupleUTopK — for relations whose rules are all singletons
//     (independent tuples) an exact O(N·k) dynamic program over the
//     score-sorted order; with multi-tuple rules it dispatches to
//     TupleUTopKWithRules, the exact cutoff-sweep algorithm below.
//   * AttrUTopK — possible-worlds enumeration (score uncertainty makes the
//     answer ordering world-dependent, so no cutoff factorization exists).

#ifndef URANK_CORE_SEMANTICS_U_TOPK_H_
#define URANK_CORE_SEMANTICS_U_TOPK_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// The most likely top-k answer. `ids` is the rank-ordered top-k list (the
// original U-Topk definition is over ranked answers: (t2,t3) and (t3,t2)
// are distinct); `probability` is its support across all worlds.
struct UTopKAnswer {
  std::vector<int> ids;
  double probability = 0.0;

  friend bool operator==(const UTopKAnswer&, const UTopKAnswer&) = default;
};

// Requires k >= 1. Ties between equal-probability answers are broken
// towards the answer found first in score order (DP) / the
// lexicographically smallest id list (enumeration).
UTopKAnswer TupleUTopK(const TupleRelation& rel, int k);

// Exact DP for independent tuples; aborts if any rule has more than one
// member. Exposed separately for testing and benchmarking.
UTopKAnswer TupleUTopKIndependent(const TupleRelation& rel, int k);

// Exact polynomial algorithm for arbitrary exclusion rules. The key
// observation making this tractable: once the cutoff (the rank-order
// position of the answer's last member) is fixed, the probability of a
// candidate answer factorizes per rule —
//
//   Pr[answer = L] = Π_{t in L} p(t) ·
//                    Π_{rules with prefix members but none chosen}
//                        (1 − prefix mass of the rule)
//
// (a rule's prefix members must all be absent unless one is chosen; its
// post-cutoff members are unconstrained). Sweeping the cutoff while
// maintaining, per rule, its best member and prefix mass gives the global
// optimum in O(N (k + log N)) after sorting. Work is done in log space so
// thousands of factors cannot underflow. Requires k >= 1.
UTopKAnswer TupleUTopKWithRules(const TupleRelation& rel, int k);

// Possible-worlds enumeration; requires an enumerable world count.
UTopKAnswer AttrUTopK(const AttrRelation& rel, int k);

// Prepared-state overloads. The tuple-level form reuses the prepared rank
// order, skipping the per-call sort (the DP itself is k-specific, so no
// statistic is memoized); the attribute-level form forwards to the
// enumeration (QueryEngine::Validate rejects non-enumerable world counts
// before dispatching here). Identical answers to the one-shot forms.
// Requires k >= 1.
UTopKAnswer TupleUTopK(const PreparedTupleRelation& prepared, int k);
UTopKAnswer AttrUTopK(const PreparedAttrRelation& prepared, int k);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_U_TOPK_H_
