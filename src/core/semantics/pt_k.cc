#include "core/semantics/pt_k.h"

#include "core/engine/prepared_relation.h"
#include "core/ranking.h"
#include "core/semantics/score_sweep.h"
#include "core/semantics/semantics.h"
#include "util/check.h"

namespace urank {
namespace {

std::vector<int> Threshold(const std::vector<double>& probs,
                           const std::vector<int>& ids, double threshold) {
  URANK_DCHECK_MSG(internal::AllFiniteInRange(probs, 0.0, 1.0),
                   "top-k membership probability outside [0,1]");
  // Order by descending probability via the ascending-statistic helper.
  std::vector<double> neg(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) neg[i] = -probs[i];
  std::vector<int> out;
  for (const RankedTuple& rt : TopKByStatistic(ids, neg, -1)) {
    if (-rt.statistic >= threshold) out.push_back(rt.id);
  }
  return out;
}

}  // namespace

std::vector<int> AttrPTk(const AttrRelation& rel, int k, double threshold,
                         TiePolicy ties) {
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return Threshold(AttrTopKProbabilities(rel, k, ties), ids, threshold);
}

std::vector<int> TuplePTk(const TupleRelation& rel, int k, double threshold,
                          TiePolicy ties) {
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return Threshold(TupleTopKProbabilities(rel, k, ties), ids, threshold);
}

std::vector<int> AttrPTk(const PreparedAttrRelation& prepared, int k,
                         double threshold, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  return Threshold(AttrTopKProbabilities(prepared, k, ties), prepared.ids(),
                   threshold);
}

std::vector<int> TuplePTk(const PreparedTupleRelation& prepared, int k,
                          double threshold, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  return Threshold(TupleTopKProbabilities(prepared, k, ties),
                   prepared.ids(), threshold);
}

PTkPruneResult TuplePTkPruned(const TupleRelation& rel, int k,
                              double threshold, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  ScoreOrderSweep sweep(rel, ties);
  std::vector<int> seen_ids;
  std::vector<double> seen_probs;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    seen_ids.push_back(rel.tuple(i).id);
    seen_probs.push_back(sweep.TopKProbability(k));
    // No unseen tuple can reach the threshold once the bound drops below.
    if (sweep.UnseenTopKBound(k) < threshold) break;
  }
  return {Threshold(seen_probs, seen_ids, threshold), sweep.accessed()};
}

}  // namespace urank
