// Shared building blocks for the prior-work ranking semantics
// (paper Section 4.2): per-tuple top-k membership probabilities.
//
// The top-k probability of a tuple is the probability, across all possible
// worlds, that the tuple appears among the k highest-scored appearing
// tuples. In the attribute-level model every tuple appears in every world,
// so this is the cdf of its rank distribution at k-1; in the tuple-level
// model it is the sum of the first k positional probabilities (presence
// required). PT-k and Global-Topk are thin layers over these values.

#ifndef URANK_CORE_SEMANTICS_SEMANTICS_H_
#define URANK_CORE_SEMANTICS_SEMANTICS_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// result[i] = Pr[t_i is in the top-k], indexed by tuple position.
// Requires k >= 1. O(s N³) attribute-level, O(N M²) worst-case tuple-level
// (the exact rank-distribution DPs).
std::vector<double> AttrTopKProbabilities(
    const AttrRelation& rel, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<double> TupleTopKProbabilities(
    const TupleRelation& rel, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Prepared-state overloads: the attribute-level form reads the shared
// rank-distribution matrix (so every k shares one O(s N³) DP), the
// tuple-level form streams positional rows over the prepared rank order in
// O(N + M) memory; both memoize the probability vector per (k, ties).
// Results are bit-identical to the one-shot forms. Requires k >= 1.
std::vector<double> AttrTopKProbabilities(
    const PreparedAttrRelation& prepared, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<double> TupleTopKProbabilities(
    const PreparedTupleRelation& prepared, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Parallel-aware prepared forms: a cache miss runs the underlying DP with
// `par` worker slots (bit-identical results regardless) and Merge()s what
// the kernel did into `report` when non-null; a cache hit leaves `report`
// untouched. Requires k >= 1.
std::vector<double> AttrTopKProbabilities(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report);
std::vector<double> TupleTopKProbabilities(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_SEMANTICS_H_
