// Unified query facade: run any of the library's ranking semantics on
// either uncertainty model through one entry point.
//
// COMPATIBILITY WRAPPER. RunRankingQuery is now a thin shim over the
// prepared-state engine (core/engine/query_engine.h): it prepares the
// relation, runs the single query, and aborts if the engine reports
// invalid options. Each call pays the full preparation cost; applications
// issuing more than one query against the same relation — or wanting
// recoverable errors, per-query statistics, or parallel batches — should
// use QueryEngine directly. The per-semantics headers likewise remain
// available for callers that need the richer result types (probabilities,
// prune statistics, rank distributions).

#ifndef URANK_CORE_QUERY_H_
#define URANK_CORE_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"

namespace urank {

// The ranking definitions of paper Sections 4–7.
enum class RankingSemantics {
  kExpectedRank,   // Definition 8 (the paper's proposal)
  kMedianRank,     // Definition 9, phi = 0.5
  kQuantileRank,   // Definition 9, phi from the options
  kUTopk,          // most likely top-k answer [42]
  kUKRanks,        // most likely tuple per rank [42], [30]
  kPTk,            // probabilistic threshold top-k [23]
  kGlobalTopk,     // top-k by top-k probability [48]
  kExpectedScore,  // rank by E[score]
};

// Human-readable semantics name ("expected-rank", ...). These names are
// also the wire protocol's "semantics" vocabulary (docs/SERVING.md) and
// are stable.
const char* ToString(RankingSemantics semantics);

// Inverse of ToString. Returns false (leaving `*out` untouched) when
// `name` is not a known semantics name.
bool FromString(std::string_view name, RankingSemantics* out);

// Stable tie-policy names ("strict-greater" / "by-index"), likewise part
// of the wire vocabulary.
const char* ToString(TiePolicy ties);
bool FromString(std::string_view name, TiePolicy* out);

// Query parameters. `k` is required for every semantics; `phi` only
// applies to kQuantileRank and `threshold` only to kPTk.
struct RankingQueryOptions {
  RankingSemantics semantics = RankingSemantics::kExpectedRank;
  int k = 10;
  double phi = 0.5;
  double threshold = 0.5;
  // The facade defaults every semantics to the deterministic by-index tie
  // policy so answers across semantics are directly comparable.
  TiePolicy ties = TiePolicy::kBreakByIndex;
};

// A ranked answer. `ids` lists the reported tuples in rank order (PT-k may
// report more or fewer than k; U-kRanks reports -1 for an unfillable
// rank). `statistics[i]` is the value the i-th entry was ranked by —
// expected/median/quantile rank (lower is better) or, for the
// probability-based semantics, the (top-k / positional / answer-set)
// probability (higher is better); empty when the semantics carries no
// per-tuple statistic for a slot.
struct RankingAnswer {
  std::vector<int> ids;
  std::vector<double> statistics;
};

// Runs the query described by `options`. Aborts on invalid options (k < 1,
// phi/threshold out of range — see the per-semantics headers). U-Topk on
// an attribute-level relation (and on a tuple-level relation with
// multi-tuple rules) uses possible-worlds enumeration and therefore
// requires an enumerable world count.
//
// Deprecated: each call re-prepares the relation from scratch and aborts
// on invalid options. Build a QueryEngine and pass a QueryRequest
// (core/engine/query_engine.h) instead — preparation is paid once,
// errors are recoverable statuses, and the same request struct serves the
// urankd wire protocol. Retained for the facade tests and as the
// simplest possible entry point.
[[deprecated(
    "prepare a QueryEngine and Run a QueryRequest instead "
    "(core/engine/query_engine.h)")]]
RankingAnswer RunRankingQuery(const AttrRelation& rel,
                              const RankingQueryOptions& options);
[[deprecated(
    "prepare a QueryEngine and Run a QueryRequest instead "
    "(core/engine/query_engine.h)")]]
RankingAnswer RunRankingQuery(const TupleRelation& rel,
                              const RankingQueryOptions& options);

}  // namespace urank

#endif  // URANK_CORE_QUERY_H_
