// Exact per-tuple rank distributions in the attribute-level model
// (Definition 7; computed as in paper Section 7.2).
//
// For tuple t_i and each support value v of X_i, conditioning on X_i = v
// makes the events "t_j outranks t_i" independent Bernoulli trials across
// j ≠ i; the conditional rank is therefore Poisson-binomial. Mixing the
// conditional distributions by Pr[X_i = v] yields rank(t_i). The total cost
// is O(s N²) per tuple and O(s N³) for all tuples, matching the paper's
// O(N³) bound for constant pdf size s.

#ifndef URANK_CORE_RANK_DISTRIBUTION_ATTR_H_
#define URANK_CORE_RANK_DISTRIBUTION_ATTR_H_

#include <vector>

#include "model/attr_model.h"
#include "model/types.h"

namespace urank {

// Rank distribution of the tuple at `index`: result[r] = Pr[R(t_i) = r] for
// r in [0, N-1]. The default tie policy is the paper's Section 7 choice
// (ties broken by tuple index).
std::vector<double> AttrRankDistribution(
    const AttrRelation& rel, int index,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Rank distributions of every tuple; result[i] is as above. O(s N³).
std::vector<std::vector<double>> AttrRankDistributions(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex);

// Multi-threaded variant: the per-tuple DPs are independent, so they are
// distributed over `threads` worker threads. threads <= 0 selects
// std::thread::hardware_concurrency(). Bit-identical to the serial
// version.
std::vector<std::vector<double>> AttrRankDistributionsParallel(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex,
    int threads = 0);

}  // namespace urank

#endif  // URANK_CORE_RANK_DISTRIBUTION_ATTR_H_
