// Exact per-tuple rank distributions in the attribute-level model
// (Definition 7; computed as in paper Section 7.2).
//
// For tuple t_i and each support value v of X_i, conditioning on X_i = v
// makes the events "t_j outranks t_i" independent Bernoulli trials across
// j ≠ i; the conditional rank is therefore Poisson-binomial. Mixing the
// conditional distributions by Pr[X_i = v] yields rank(t_i). The total cost
// is O(s N²) per tuple and O(s N³) for all tuples, matching the paper's
// O(N³) bound for constant pdf size s.
//
// Parallel decomposition. The per-tuple DPs are mutually independent and
// write disjoint output rows, so the parallel forms distribute whole
// tuples over worker slots; each worker runs the flat convolution in its
// own arena-backed scratch. No cross-tuple state exists, so results are
// bit-identical for any thread count — see docs/PERFORMANCE.md.

#ifndef URANK_CORE_RANK_DISTRIBUTION_ATTR_H_
#define URANK_CORE_RANK_DISTRIBUTION_ATTR_H_

#include <vector>

#include "core/internal/kernel_arena.h"
#include "core/internal/sorted_pdf.h"
#include "model/attr_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

// Sorted pdfs of every tuple of `rel`, in tuple order — the O(N s log s)
// preprocessing every attribute-level DP starts from. Built once and
// cached by PreparedAttrRelation; one-shot entry points build it
// internally.
std::vector<internal::SortedPdf> BuildSortedPdfs(const AttrRelation& rel);

// Rank distribution of tuple `index` given prebuilt sorted pdfs, written
// into `*dist` (resized to max(N, 1)). `*pmf_scratch` is the flat
// Poisson-binomial work buffer — a 64-byte-aligned arena buffer so the
// vector kernels run on aligned scratch; both buffers are reused at
// high-water capacity, so streaming callers perform no per-tuple
// allocation.
void AttrRankDistributionInto(const AttrRelation& rel,
                              const std::vector<internal::SortedPdf>& pdfs,
                              int index, TiePolicy ties,
                              internal::AlignedBuf* pmf_scratch,
                              std::vector<double>* dist);

// Rank distribution of the tuple at `index`: result[r] = Pr[R(t_i) = r] for
// r in [0, N-1]. The default tie policy is the paper's Section 7 choice
// (ties broken by tuple index). Aborts if index is out of range.
std::vector<double> AttrRankDistribution(
    const AttrRelation& rel, int index,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Rank distributions of every tuple; result[i] is as above. O(s N³).
std::vector<std::vector<double>> AttrRankDistributions(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex);

// Parallel form over prebuilt pdfs: per-tuple DPs are distributed over
// PlannedWorkers(par, N) worker slots (min_parallel_items counts tuples).
// `report`, when non-null, is Merge()d with the threads/arena-bytes used.
// Bit-identical to the serial form for any `par`.
std::vector<std::vector<double>> AttrRankDistributions(
    const AttrRelation& rel, const std::vector<internal::SortedPdf>& pdfs,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report);

// Multi-threaded variant: the per-tuple DPs are independent, so they are
// distributed over `threads` worker threads. threads <= 0 selects
// std::thread::hardware_concurrency(). Bit-identical to the serial
// version.
std::vector<std::vector<double>> AttrRankDistributionsParallel(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex,
    int threads = 0);

}  // namespace urank

#endif  // URANK_CORE_RANK_DISTRIBUTION_ATTR_H_
