#include "core/rank_distribution_attr.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/internal/sorted_pdf.h"
#include "util/check.h"
#include "util/poisson_binomial.h"

namespace urank {
namespace {

using internal::SortedPdf;

// Rank distribution of tuple `index` given precomputed sorted pdfs.
std::vector<double> DistributionForTuple(const AttrRelation& rel,
                                         const std::vector<SortedPdf>& pdfs,
                                         int index, TiePolicy ties) {
  const int n = rel.size();
  std::vector<double> dist(static_cast<size_t>(std::max(n, 1)), 0.0);
  const AttrTuple& t = rel.tuple(index);
  for (const ScoreValue& sv : t.pdf) {
    PoissonBinomial pb;
    for (int j = 0; j < n; ++j) {
      if (j == index) continue;
      const SortedPdf& pj = pdfs[static_cast<size_t>(j)];
      double beat = pj.PrGreater(sv.value);
      if (ties == TiePolicy::kBreakByIndex && j < index) {
        beat += pj.PrEqual(sv.value);
      }
      // `beat` may exceed 1 only by accumulated round-off; anything larger
      // means a denormalized source pdf.
      URANK_DCHECK_PROB(beat);
      pb.AddTrial(std::min(beat, 1.0));
    }
    const std::vector<double>& pmf = pb.pmf();
    for (size_t c = 0; c < pmf.size(); ++c) {
      dist[c] += sv.prob * pmf[c];
    }
  }
  URANK_DCHECK_NORMALIZED(dist);
  return dist;
}

}  // namespace

std::vector<double> AttrRankDistribution(const AttrRelation& rel, int index,
                                         TiePolicy ties) {
  URANK_CHECK_MSG(index >= 0 && index < rel.size(), "tuple index out of range");
  std::vector<SortedPdf> pdfs;
  pdfs.reserve(static_cast<size_t>(rel.size()));
  for (int j = 0; j < rel.size(); ++j) pdfs.emplace_back(rel.tuple(j));
  return DistributionForTuple(rel, pdfs, index, ties);
}

std::vector<std::vector<double>> AttrRankDistributions(const AttrRelation& rel,
                                                       TiePolicy ties) {
  std::vector<SortedPdf> pdfs;
  pdfs.reserve(static_cast<size_t>(rel.size()));
  for (int j = 0; j < rel.size(); ++j) pdfs.emplace_back(rel.tuple(j));
  std::vector<std::vector<double>> dists;
  dists.reserve(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) {
    dists.push_back(DistributionForTuple(rel, pdfs, i, ties));
  }
  return dists;
}

std::vector<std::vector<double>> AttrRankDistributionsParallel(
    const AttrRelation& rel, TiePolicy ties, int threads) {
  const int n = rel.size();
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::max(1, std::min(threads, n));
  if (threads <= 1 || n <= 1) return AttrRankDistributions(rel, ties);

  std::vector<SortedPdf> pdfs;
  pdfs.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) pdfs.emplace_back(rel.tuple(j));

  std::vector<std::vector<double>> dists(static_cast<size_t>(n));
  std::atomic<int> next{0};
  auto worker = [&]() {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      dists[static_cast<size_t>(i)] =
          DistributionForTuple(rel, pdfs, i, ties);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return dists;
}

}  // namespace urank
