#include "core/rank_distribution_attr.h"

#include <algorithm>

#include "core/internal/kernel_arena.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {

using internal::AlignedBuf;
using internal::SortedPdf;

namespace {

// PbConvolveTrial on an arena buffer: appends one {1-p, p} trial in place.
URANK_KERNEL void BufConvolveTrial(const vk::KernelOps& ops, AlignedBuf* pmf,
                                   double p) {
  const size_t m = pmf->size();
  pmf->resize(m + 1);
  ops.convolve_trial(pmf->data(), m, p);
}

}  // namespace

std::vector<SortedPdf> BuildSortedPdfs(const AttrRelation& rel) {
  std::vector<SortedPdf> pdfs(static_cast<size_t>(rel.size()));
  std::vector<ScoreValue> scratch;
  for (int j = 0; j < rel.size(); ++j) {
    pdfs[static_cast<size_t>(j)].Build(rel.tuple(j), &scratch);
  }
  return pdfs;
}

URANK_KERNEL void AttrRankDistributionInto(
    const AttrRelation& rel, const std::vector<SortedPdf>& pdfs, int index,
    TiePolicy ties, AlignedBuf* pmf_scratch, std::vector<double>* dist) {
  const int n = rel.size();
  const vk::KernelOps& ops = vk::Active();
  dist->assign(static_cast<size_t>(std::max(n, 1)), 0.0);
  AlignedBuf& pmf = *pmf_scratch;
  const AttrTuple& t = rel.tuple(index);
  for (const ScoreValue& sv : t.pdf) {
    pmf.assign(1, 1.0);
    for (int j = 0; j < n; ++j) {
      if (j == index) continue;
      const SortedPdf& pj = pdfs[static_cast<size_t>(j)];
      double beat = pj.PrGreater(sv.value);
      if (ties == TiePolicy::kBreakByIndex && j < index) {
        beat += pj.PrEqual(sv.value);
      }
      // `beat` may exceed 1 only by accumulated round-off; anything larger
      // means a denormalized source pdf.
      URANK_DCHECK_PROB(beat);
      if (beat > 0.0) BufConvolveTrial(ops, &pmf, std::min(beat, 1.0));
    }
    ops.scale_add(dist->data(), pmf.data(), sv.prob, pmf.size());
  }
  URANK_DCHECK_NORMALIZED(*dist);
}

std::vector<double> AttrRankDistribution(const AttrRelation& rel, int index,
                                         TiePolicy ties) {
  URANK_CHECK_MSG(index >= 0 && index < rel.size(), "tuple index out of range");
  const std::vector<SortedPdf> pdfs = BuildSortedPdfs(rel);
  AlignedBuf pmf_scratch;
  std::vector<double> dist;
  AttrRankDistributionInto(rel, pdfs, index, ties, &pmf_scratch, &dist);
  return dist;
}

std::vector<std::vector<double>> AttrRankDistributions(const AttrRelation& rel,
                                                       TiePolicy ties) {
  return AttrRankDistributions(rel, BuildSortedPdfs(rel), ties,
                               ParallelismOptions{}, nullptr);
}

URANK_KERNEL std::vector<std::vector<double>> AttrRankDistributions(
    const AttrRelation& rel, const std::vector<SortedPdf>& pdfs,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report) {
  const int n = rel.size();
  std::vector<std::vector<double>> dists(static_cast<size_t>(n));
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::KernelArena> arenas(static_cast<size_t>(workers));
  // One chunk per tuple: per-tuple DP cost dwarfs the chunk-claim atomic,
  // and output rows are disjoint, so any claim order — and any placement —
  // yields identical results.
  const ForRunInfo used = ParallelForPlaced(
      n, workers, par.placement, [&](int i, int slot) {
        internal::KernelArena& arena = arenas[static_cast<size_t>(slot)];
        AttrRankDistributionInto(rel, pdfs, i, ties, &arena.Doubles(0),
                                 &dists[static_cast<size_t>(i)]);
      });
  if (report != nullptr) {
    KernelReport local;
    local.threads_used = used.participants;
    local.nodes_used = used.nodes_used;
    for (const internal::KernelArena& arena : arenas) {
      local.arena_bytes += arena.bytes();
    }
    report->Merge(local);
  }
  return dists;
}

std::vector<std::vector<double>> AttrRankDistributionsParallel(
    const AttrRelation& rel, TiePolicy ties, int threads) {
  ParallelismOptions par;
  par.threads = threads;
  par.min_parallel_items = 0;  // this entry point always parallelizes
  return AttrRankDistributions(rel, BuildSortedPdfs(rel), ties, par,
                               nullptr);
}

}  // namespace urank
