// Exact per-tuple rank distributions in the tuple-level model
// (Definition 7; computed as in paper Section 7, tuple-level DP).
//
// Conditioned on t_i appearing, each other exclusion rule independently
// contributes at most one appearing tuple ranked above t_i, so the rank is
// Poisson-binomial over rules; conditioned on t_i being absent, the rank is
// |W|, again Poisson-binomial over rules (with t_i's own rule renormalized
// by the absence of t_i). Mixing the two branches by p(t_i) gives
// rank(t_i). With incremental add/remove updates of the shared
// Poisson-binomial state the typical cost is O(M) per tuple after an O(M²)
// initialization; the worst case matches the paper's O(N M²).
//
// Two flavours are exposed:
//   * TupleRankDistributions — Definition 7 exactly, including the
//     absent-branch rank |W|; rows have size N+1 and sum to 1. This is the
//     distribution underlying expected/median/quantile ranks.
//   * TuplePositionalProbabilities — Pr[t_i appears AND exactly r appearing
//     tuples rank above it]; rows sum to p(t_i). This is the object the
//     prior-work semantics (U-kRanks, PT-k, Global-Topk) are defined on,
//     where an absent tuple occupies no rank.
//
// Parallel decomposition. The sweep order is partitioned into a
// deterministic chunk grid — a pure function of the relation (size, run
// boundaries, rule-touch profile), never of the thread count. Each chunk
// is self-contained: its worker replays the O(chunk start) prefix of rule
// masses, rebuilds the chunk-entry Poisson binomial from those masses in
// canonical rule-index order, then sweeps its tuples with allocation-free
// incremental updates in a per-worker arena. Because every entry point
// (serial and parallel alike) runs the same grid, results are
// bit-identical for any ParallelismOptions — see docs/PERFORMANCE.md.

#ifndef URANK_CORE_RANK_DISTRIBUTION_TUPLE_H_
#define URANK_CORE_RANK_DISTRIBUTION_TUPLE_H_

#include <functional>
#include <span>
#include <vector>

#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

// Streaming form: invokes `fn(index, dist)` once per tuple with that
// tuple's Definition-7 rank distribution (size N+1). The span passed to
// `fn` views a 64-byte aligned scratch buffer reused between calls; copy
// it if it must outlive the callback.
// Tuples are visited in score order, not index order. Memory stays O(N + M)
// instead of the O(N²) of the matrix form.
void ForEachTupleRankDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn);

// As above, but sweeping `rank_order` — a precomputed permutation of the
// tuple positions sorted by (score descending, index ascending), e.g.
// PreparedTupleRelation::rank_order() — instead of re-sorting internally.
void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn);

// Precomputed chunk-entry state for the deterministic sweep grid: the
// chunk start positions plus, for each chunk, a snapshot of the per-rule
// prefix masses the sweep carries entering it — the exact arithmetic the
// per-chunk replay performs, taken once. Handing a prebuilt table to the
// parallel forms below (PreparedTupleRelation::SweepEntries memoizes one
// per tie policy) skips the O(chunk start) replay every chunk otherwise
// pays, without changing a single bit of the results: the snapshot *is*
// the replayed state. A pure function of (rel, rank_order, ties).
struct TupleSweepEntryTable {
  std::vector<std::size_t> starts;  // chunk grid, size chunks + 1
  std::vector<double> entry_mass;   // chunks x num_rules, row-major
  int num_rules = 0;
};

TupleSweepEntryTable BuildTupleSweepEntryTable(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties);

// Parallel chunked form: invokes `fn(chunk, index, dist)` once per tuple,
// possibly concurrently for tuples of *distinct* chunks (never for the
// same chunk), with chunk in [0, TupleSweepChunkCount(rel)). The per-chunk
// buffer passed to `fn` is reused between that chunk's calls. `fn` must be
// safe to run concurrently for distinct chunks; accumulations that are not
// per-tuple-disjoint should keep per-chunk partials and fold them in chunk
// order (see ParallelReduce). Results are bit-identical for any `par`.
// `report`, when non-null, is Merge()d with the threads/nodes/arena-bytes
// used. `entries`, when non-null, must be the table built for the same
// (rel, rank_order, ties) — chunks then start from the precomputed entry
// state instead of replaying their prefix.
void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries = nullptr);

// Streaming positional probabilities: invokes `fn(index, row)` once per
// tuple where row[c] = Pr[t_i present and ranked c-th among appearing
// tuples]; entries at ranks >= row.size() are identically zero (at most
// one tuple per rule appears, and zero-mass rules cannot contribute). The
// buffer is reused between calls; tuples are visited in score order.
// Memory stays O(M) instead of the O(N²) of the matrix form. The overload
// taking `rank_order` reuses a precomputed (score desc, index asc)
// permutation.
void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn);
void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn);

// Parallel chunked positional form; same contract as the parallel
// ForEachTupleRankDistribution above (including the optional prebuilt
// entry table).
void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries = nullptr);

// Number of chunks the deterministic sweep grid partitions `rel` into — a
// pure function of the relation size. Callback chunk indices are always in
// [0, TupleSweepChunkCount(rel)); some chunks may be empty.
int TupleSweepChunkCount(const TupleRelation& rel);

// result[i][r] = Pr[R(t_i) = r] for r in [0, N]; rows sum to 1.
std::vector<std::vector<double>> TupleRankDistributions(
    const TupleRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex);

// result[i][r] = Pr[t_i present and ranked r-th among appearing tuples],
// r in [0, N]; rows sum to p(t_i).
std::vector<std::vector<double>> TuplePositionalProbabilities(
    const TupleRelation& rel, TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_RANK_DISTRIBUTION_TUPLE_H_
