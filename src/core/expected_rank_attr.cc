#include "core/expected_rank_attr.h"

#include <algorithm>
#include <unordered_map>

#include "core/access.h"
#include "core/engine/prepared_relation.h"
#include "core/internal/shard_plan.h"
#include "core/internal/sorted_pdf.h"
#include "core/internal/value_universe.h"
#include "core/rank_distribution_attr.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {

using internal::PrEqualPair;
using internal::PrGreaterPair;
using internal::SortedPdf;

std::vector<double> AttrExpectedRanksBruteForce(const AttrRelation& rel,
                                                TiePolicy ties) {
  const int n = rel.size();
  const std::vector<SortedPdf> pdfs = BuildSortedPdfs(rel);
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    double r = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      r += PrGreaterPair(pdfs[static_cast<size_t>(j)],
                         pdfs[static_cast<size_t>(i)]);
      if (ties == TiePolicy::kBreakByIndex && j < i) {
        r += PrEqualPair(pdfs[static_cast<size_t>(j)],
                         pdfs[static_cast<size_t>(i)]);
      }
    }
    ranks[static_cast<size_t>(i)] = r;
  }
  return ranks;
}

namespace {

// A-ERank (eq. 4) against a prebuilt value universe.
URANK_KERNEL
std::vector<double> ExpectedRanksWithUniverse(
    const AttrRelation& rel, const internal::ValueUniverse& universe,
    TiePolicy ties) {
  const int n = rel.size();
  // For kBreakByIndex, a tie with an earlier tuple also counts as being
  // outranked: add Σ_l p_{i,l} · Σ_{j<i} Pr[X_j = v_{i,l}], maintained
  // with a running per-value equal-mass map over tuples seen so far.
  std::unordered_map<double, double> equal_mass_before;

  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const AttrTuple& t = rel.tuple(i);
    double r = 0.0;
    for (const ScoreValue& sv : t.pdf) {
      // q(v) counts X_i's own mass above v too; subtract it (eq. 4).
      r += sv.prob * (universe.QGreater(sv.value) - t.PrGreater(sv.value));
      if (ties == TiePolicy::kBreakByIndex) {
        auto it = equal_mass_before.find(sv.value);
        if (it != equal_mass_before.end()) r += sv.prob * it->second;
      }
    }
    ranks[static_cast<size_t>(i)] = r;
    if (ties == TiePolicy::kBreakByIndex) {
      for (const ScoreValue& sv : t.pdf) {
        equal_mass_before[sv.value] += sv.prob;
      }
    }
  }
  // An attribute-level tuple is always present, so its expected rank is a
  // mean over [0, N-1].
  URANK_DCHECK_MSG(internal::AllFiniteInRange(ranks, 0.0,
                                              static_cast<double>(n - 1)),
                   "expected rank outside [0, N-1]");
  return ranks;
}

// Shard-local A-ERank pass over tuples [shard.begin, shard.end). The
// running equal-mass map of the serial kernel is replaced by the plan's
// per-entry snapshots of that exact map (taken before each tuple's own
// masses are added), so the arithmetic below reproduces the serial reads
// bit for bit: a snapshot of 0.0 corresponds to a serial map miss (no
// add) or an exact-zero hit (r += prob * 0.0, a no-op — r is never -0.0
// because every term is a product/difference that cannot produce -0.0
// from these non-negative masses).
URANK_KERNEL
void ExpectedRanksAttrShardSweep(const AttrRelation& rel,
                                 const internal::ValueUniverse& universe,
                                 const internal::AttrShard& shard,
                                 TiePolicy ties, std::vector<double>* ranks) {
  for (int i = shard.begin; i < shard.end; ++i) {
    const AttrTuple& t = rel.tuple(i);
    const std::size_t off =
        shard.tie_offset[static_cast<size_t>(i - shard.begin)];
    double r = 0.0;
    std::size_t l = 0;
    for (const ScoreValue& sv : t.pdf) {
      // Sorted-universe binary searches per pdf entry — data-dependent
      // lookups, not a contiguous sweep a vector kernel could express.
      // urank-lint: allow(kernel-vectorize)
      r += sv.prob * (universe.QGreater(sv.value) - t.PrGreater(sv.value));
      if (ties == TiePolicy::kBreakByIndex) {
        const double mass = shard.tie_mass[off + l];
        if (mass != 0.0) r += sv.prob * mass;
      }
      ++l;
    }
    (*ranks)[static_cast<size_t>(i)] = r;
  }
}

// Shard-parallel A-ERank over the prepared plan; writes are disjoint
// across shards (each tuple position lives in exactly one shard).
std::vector<double> ExpectedRanksSharded(const AttrRelation& rel,
                                         const internal::ValueUniverse& universe,
                                         const internal::AttrShardPlan& plan,
                                         TiePolicy ties,
                                         const ParallelismOptions& par,
                                         KernelReport* report) {
  const int n = rel.size();
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  const int num_chunks = static_cast<int>(plan.shards.size());
  const int workers = PlannedWorkers(par, static_cast<long long>(n));
  const ForRunInfo info = ParallelForPlaced(
      num_chunks, workers, par.placement, [&](int chunk, int /*slot*/) {
        ExpectedRanksAttrShardSweep(
            rel, universe, plan.shards[static_cast<size_t>(chunk)], ties,
            &ranks);
      });
  if (report != nullptr) {
    KernelReport kr;
    kr.threads_used = info.participants;
    kr.nodes_used = info.nodes_used;
    report->Merge(kr);
  }
  URANK_DCHECK_MSG(internal::AllFiniteInRange(ranks, 0.0,
                                              static_cast<double>(n - 1)),
                   "expected rank outside [0, N-1]");
  return ranks;
}

}  // namespace

std::vector<double> AttrExpectedRanks(const AttrRelation& rel,
                                      TiePolicy ties) {
  return ExpectedRanksWithUniverse(rel, internal::BuildValueUniverse(rel),
                                   ties);
}

std::vector<double> AttrExpectedRanks(const PreparedAttrRelation& prepared,
                                      TiePolicy ties) {
  const StatKey key{StatKey::Kind::kExpectedRank, 0, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    return ExpectedRanksWithUniverse(prepared.relation(),
                                     prepared.universe(), ties);
  });
}

std::vector<RankedTuple> AttrExpectedRankTopK(const AttrRelation& rel, int k,
                                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<double> ranks = AttrExpectedRanks(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) {
    ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  }
  return TopKByStatistic(ids, ranks, k);
}

std::vector<RankedTuple> AttrExpectedRankTopK(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TopKByStatistic(prepared.ids(), AttrExpectedRanks(prepared, ties),
                         k);
}

std::vector<double> AttrExpectedRanks(const PreparedAttrRelation& prepared,
                                      TiePolicy ties,
                                      const ParallelismOptions& par,
                                      KernelReport* report) {
  const StatKey key{StatKey::Kind::kExpectedRank, 0, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    return ExpectedRanksSharded(prepared.relation(), prepared.universe(),
                                prepared.shard_plan(), ties, par, report);
  });
}

std::vector<RankedTuple> AttrExpectedRankTopK(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TopKByStatistic(prepared.ids(),
                         AttrExpectedRanks(prepared, ties, par, report), k);
}

AttrPruneResult AttrExpectedRankTopKPrune(const AttrRelation& rel, int k,
                                          bool clamp_tail_bounds) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  for (const AttrTuple& t : rel.tuples()) {
    for (const ScoreValue& sv : t.pdf) {
      URANK_CHECK_MSG(sv.value > 0.0,
                      "A-ERank-Prune requires strictly positive scores");
    }
  }
  const int total = rel.size();
  SortedAttrStream stream(rel);

  // Markov tail mass of one tuple against threshold expectation e:
  // Σ_l p_l · (e / v_l), each term optionally clamped to its trivial
  // probability bound of 1.
  auto tail_bound = [clamp_tail_bounds](const SortedPdf& pdf, double e) {
    double sum = 0.0;
    for (size_t l = 0; l < pdf.values.size(); ++l) {
      const double term = e / pdf.values[l];
      sum += pdf.probs[l] * (clamp_tail_bounds ? std::min(term, 1.0) : term);
    }
    return sum;
  };

  // State for seen tuples, in stream order.
  std::vector<const AttrTuple*> seen;
  std::vector<SortedPdf> pdfs;
  std::vector<double> pair_sum;  // A_i = Σ_{seen j≠i} Pr[X_j > X_i]
  std::vector<ScoreValue> sort_scratch;

  while (stream.HasNext()) {
    const AttrTuple& t = stream.Next();
    SortedPdf pdf;
    pdf.Build(t, &sort_scratch);
    double own_pairs = 0.0;
    for (size_t j = 0; j < pdfs.size(); ++j) {
      // Each iteration is an O(s+s') sorted-pdf merge inside
      // PrGreaterPair, not an elementwise array sweep.
      // urank-lint: allow(kernel-vectorize)
      pair_sum[j] += PrGreaterPair(pdf, pdfs[j]);
      own_pairs += PrGreaterPair(pdfs[j], pdf);
    }
    seen.push_back(&t);
    pdfs.push_back(std::move(pdf));
    pair_sum.push_back(own_pairs);

    const int n = stream.accessed();
    if (n < k) continue;  // cannot have k candidates yet
    if (n == total) break;

    // The stream is sorted by expected score, so E[X_n] bounds every unseen
    // tuple's expectation; Markov gives Pr[X_u > v] <= E[X_n] / v.
    const double expected_n = seen.back()->ExpectedScore();
    double tail_sum = 0.0;  // Σ_{seen j} bound on Pr[X_j <= X_u]
    for (const SortedPdf& p : pdfs) tail_sum += tail_bound(p, expected_n);
    const double r_minus = static_cast<double>(n) - tail_sum;  // eq. (6)
    int below = 0;
    for (size_t i = 0; i < pair_sum.size(); ++i) {
      const double r_plus =
          pair_sum[i] + static_cast<double>(total - n) *
                            tail_bound(pdfs[i], expected_n);  // eq. (5)
      if (r_plus < r_minus) ++below;
    }
    if (below >= k) break;
  }

  // Exact expected ranks within the curtailed prefix D' (the paper's
  // surrogate for the unknown full ranks).
  std::vector<AttrTuple> prefix;
  prefix.reserve(seen.size());
  for (const AttrTuple* t : seen) prefix.push_back(*t);
  AttrRelation curtailed(std::move(prefix));
  std::vector<double> ranks = AttrExpectedRanks(curtailed);
  std::vector<int> ids(static_cast<size_t>(curtailed.size()));
  for (int i = 0; i < curtailed.size(); ++i) {
    ids[static_cast<size_t>(i)] = curtailed.tuple(i).id;
  }
  return {TopKByStatistic(ids, ranks, k), stream.accessed()};
}

}  // namespace urank
