#include "core/query.h"

#include <utility>

#include "core/engine/query_engine.h"
#include "util/check.h"

namespace urank {
namespace {

// The facade's abort-on-bad-options contract, layered over the engine's
// recoverable statuses: run through a throwaway engine and promote any
// validation failure to a URANK_CHECK with the engine's message.
template <typename Relation>
RankingAnswer PrepareAndRun(Relation rel, const RankingQueryOptions& options) {
  const QueryEngine engine(std::move(rel));
  QueryResult result = engine.Run(options);
  URANK_CHECK_MSG(result.status.ok(), result.status.message.c_str());
  return std::move(result.answer);
}

}  // namespace

const char* ToString(RankingSemantics semantics) {
  switch (semantics) {
    case RankingSemantics::kExpectedRank:
      return "expected-rank";
    case RankingSemantics::kMedianRank:
      return "median-rank";
    case RankingSemantics::kQuantileRank:
      return "quantile-rank";
    case RankingSemantics::kUTopk:
      return "u-topk";
    case RankingSemantics::kUKRanks:
      return "u-kranks";
    case RankingSemantics::kPTk:
      return "pt-k";
    case RankingSemantics::kGlobalTopk:
      return "global-topk";
    case RankingSemantics::kExpectedScore:
      return "expected-score";
  }
  return "?";
}

bool FromString(std::string_view name, RankingSemantics* out) {
  static constexpr RankingSemantics kAll[] = {
      RankingSemantics::kExpectedRank,  RankingSemantics::kMedianRank,
      RankingSemantics::kQuantileRank,  RankingSemantics::kUTopk,
      RankingSemantics::kUKRanks,       RankingSemantics::kPTk,
      RankingSemantics::kGlobalTopk,    RankingSemantics::kExpectedScore,
  };
  for (RankingSemantics semantics : kAll) {
    if (name == ToString(semantics)) {
      *out = semantics;
      return true;
    }
  }
  return false;
}

const char* ToString(TiePolicy ties) {
  switch (ties) {
    case TiePolicy::kStrictGreater:
      return "strict-greater";
    case TiePolicy::kBreakByIndex:
      return "by-index";
  }
  return "?";
}

bool FromString(std::string_view name, TiePolicy* out) {
  for (TiePolicy ties :
       {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
    if (name == ToString(ties)) {
      *out = ties;
      return true;
    }
  }
  return false;
}

// The definitions of the deprecated facade itself: suppress the
// self-referential deprecation diagnostics GCC emits for them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

RankingAnswer RunRankingQuery(const AttrRelation& rel,
                              const RankingQueryOptions& options) {
  return PrepareAndRun(rel, options);
}

RankingAnswer RunRankingQuery(const TupleRelation& rel,
                              const RankingQueryOptions& options) {
  return PrepareAndRun(rel, options);
}

#pragma GCC diagnostic pop

}  // namespace urank
