#include "core/query.h"

#include <utility>

#include "core/engine/query_engine.h"
#include "util/check.h"

namespace urank {
namespace {

// The facade's abort-on-bad-options contract, layered over the engine's
// recoverable statuses: run through a throwaway engine and promote any
// validation failure to a URANK_CHECK with the engine's message.
template <typename Relation>
RankingAnswer PrepareAndRun(Relation rel, const RankingQueryOptions& options) {
  const QueryEngine engine(std::move(rel));
  QueryResult result = engine.Run(options);
  URANK_CHECK_MSG(result.status.ok(), result.status.message.c_str());
  return std::move(result.answer);
}

}  // namespace

const char* ToString(RankingSemantics semantics) {
  switch (semantics) {
    case RankingSemantics::kExpectedRank:
      return "expected-rank";
    case RankingSemantics::kMedianRank:
      return "median-rank";
    case RankingSemantics::kQuantileRank:
      return "quantile-rank";
    case RankingSemantics::kUTopk:
      return "u-topk";
    case RankingSemantics::kUKRanks:
      return "u-kranks";
    case RankingSemantics::kPTk:
      return "pt-k";
    case RankingSemantics::kGlobalTopk:
      return "global-topk";
    case RankingSemantics::kExpectedScore:
      return "expected-score";
  }
  return "?";
}

RankingAnswer RunRankingQuery(const AttrRelation& rel,
                              const RankingQueryOptions& options) {
  return PrepareAndRun(rel, options);
}

RankingAnswer RunRankingQuery(const TupleRelation& rel,
                              const RankingQueryOptions& options) {
  return PrepareAndRun(rel, options);
}

}  // namespace urank
