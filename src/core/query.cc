#include "core/query.h"

#include <algorithm>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/ranking.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/semantics.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "util/check.h"

namespace urank {
namespace {

RankingAnswer FromRanked(const std::vector<RankedTuple>& ranked) {
  RankingAnswer answer;
  answer.ids.reserve(ranked.size());
  answer.statistics.reserve(ranked.size());
  for (const RankedTuple& rt : ranked) {
    answer.ids.push_back(rt.id);
    answer.statistics.push_back(rt.statistic);
  }
  return answer;
}

// Probability-carrying answers: ids in rank order plus the per-id
// probability looked up from the per-position values.
RankingAnswer WithProbabilities(std::vector<int> ids,
                                const std::vector<double>& probs_by_position,
                                const std::vector<int>& position_of_id) {
  RankingAnswer answer;
  answer.statistics.reserve(ids.size());
  for (int id : ids) {
    if (id >= 0 && static_cast<size_t>(id) < position_of_id.size() &&
        position_of_id[static_cast<size_t>(id)] >= 0) {
      answer.statistics.push_back(
          probs_by_position[static_cast<size_t>(
              position_of_id[static_cast<size_t>(id)])]);
    } else {
      answer.statistics.push_back(0.0);
    }
  }
  answer.ids = std::move(ids);
  return answer;
}

// Maps tuple id -> position for id-keyed statistic lookup. Ids may be
// arbitrary ints; negative ids fall back to "no statistic".
template <typename Relation>
std::vector<int> PositionOfId(const Relation& rel) {
  int max_id = -1;
  for (int i = 0; i < rel.size(); ++i) {
    max_id = std::max(max_id, rel.tuple(i).id);
  }
  std::vector<int> position(static_cast<size_t>(max_id) + 1, -1);
  for (int i = 0; i < rel.size(); ++i) {
    const int id = rel.tuple(i).id;
    if (id >= 0) position[static_cast<size_t>(id)] = i;
  }
  return position;
}

}  // namespace

const char* ToString(RankingSemantics semantics) {
  switch (semantics) {
    case RankingSemantics::kExpectedRank:
      return "expected-rank";
    case RankingSemantics::kMedianRank:
      return "median-rank";
    case RankingSemantics::kQuantileRank:
      return "quantile-rank";
    case RankingSemantics::kUTopk:
      return "u-topk";
    case RankingSemantics::kUKRanks:
      return "u-kranks";
    case RankingSemantics::kPTk:
      return "pt-k";
    case RankingSemantics::kGlobalTopk:
      return "global-topk";
    case RankingSemantics::kExpectedScore:
      return "expected-score";
  }
  return "?";
}

RankingAnswer RunRankingQuery(const AttrRelation& rel,
                              const RankingQueryOptions& options) {
  switch (options.semantics) {
    case RankingSemantics::kExpectedRank:
      return FromRanked(AttrExpectedRankTopK(rel, options.k, options.ties));
    case RankingSemantics::kMedianRank:
      return FromRanked(AttrQuantileRankTopK(rel, options.k, 0.5, options.ties));
    case RankingSemantics::kQuantileRank:
      return FromRanked(
          AttrQuantileRankTopK(rel, options.k, options.phi, options.ties));
    case RankingSemantics::kUTopk: {
      const UTopKAnswer utopk = AttrUTopK(rel, options.k);
      RankingAnswer answer;
      answer.ids = utopk.ids;
      answer.statistics.assign(utopk.ids.size(), utopk.probability);
      return answer;
    }
    case RankingSemantics::kUKRanks: {
      RankingAnswer answer;
      answer.ids = AttrUKRanks(rel, options.k, options.ties);
      return answer;
    }
    case RankingSemantics::kPTk:
      return WithProbabilities(
          AttrPTk(rel, options.k, options.threshold, options.ties),
          AttrTopKProbabilities(rel, options.k, options.ties),
          PositionOfId(rel));
    case RankingSemantics::kGlobalTopk:
      return WithProbabilities(
          AttrGlobalTopK(rel, options.k, options.ties),
          AttrTopKProbabilities(rel, options.k, options.ties),
          PositionOfId(rel));
    case RankingSemantics::kExpectedScore:
      return FromRanked(AttrExpectedScoreTopK(rel, options.k));
  }
  URANK_CHECK_MSG(false, "unknown semantics");
  return {};
}

RankingAnswer RunRankingQuery(const TupleRelation& rel,
                              const RankingQueryOptions& options) {
  switch (options.semantics) {
    case RankingSemantics::kExpectedRank:
      return FromRanked(TupleExpectedRankTopK(rel, options.k, options.ties));
    case RankingSemantics::kMedianRank:
      return FromRanked(
          TupleQuantileRankTopK(rel, options.k, 0.5, options.ties));
    case RankingSemantics::kQuantileRank:
      return FromRanked(
          TupleQuantileRankTopK(rel, options.k, options.phi, options.ties));
    case RankingSemantics::kUTopk: {
      const UTopKAnswer utopk = TupleUTopK(rel, options.k);
      RankingAnswer answer;
      answer.ids = utopk.ids;
      answer.statistics.assign(utopk.ids.size(), utopk.probability);
      return answer;
    }
    case RankingSemantics::kUKRanks: {
      RankingAnswer answer;
      answer.ids = TupleUKRanks(rel, options.k, options.ties);
      return answer;
    }
    case RankingSemantics::kPTk:
      return WithProbabilities(
          TuplePTk(rel, options.k, options.threshold, options.ties),
          TupleTopKProbabilities(rel, options.k, options.ties),
          PositionOfId(rel));
    case RankingSemantics::kGlobalTopk:
      return WithProbabilities(
          TupleGlobalTopK(rel, options.k, options.ties),
          TupleTopKProbabilities(rel, options.k, options.ties),
          PositionOfId(rel));
    case RankingSemantics::kExpectedScore:
      return FromRanked(TupleExpectedScoreTopK(rel, options.k));
  }
  URANK_CHECK_MSG(false, "unknown semantics");
  return {};
}

}  // namespace urank
