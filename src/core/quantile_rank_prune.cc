// Pruned top-k quantile/median rank kernels (see quantile_rank.h for the
// bound derivations, and docs/PERFORMANCE.md "Scaling to N=1M" for the
// complexity discussion). The kernels reuse the exact sweep machinery of
// the unpruned DPs — core/internal/tuple_sweep.* for the tuple level,
// AttrRankDistributionInto for the attribute level — so every per-tuple
// quantile they compute is bit-identical to the unpruned value; pruning
// only truncates the scan once unscanned tuples provably cannot place.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/engine/prepared_relation.h"
#include "core/internal/kernel_arena.h"
#include "core/internal/tuple_sweep.h"
#include "core/internal/value_universe.h"
#include "core/internal/vector_kernels.h"
#include "core/quantile_rank.h"
#include "core/rank_distribution_attr.h"
#include "util/check.h"
#include "util/kernel_annotations.h"
#include "util/parallel.h"

namespace urank {
namespace {

using internal::AlignedBuf;

// Bounded max-heap of the k best (statistic, id) pairs under the
// library-wide (statistic asc, id asc) order: front() is the current k-th
// best. Fixed capacity, allocated once — offers never allocate.
struct KBestHeap {
  std::vector<std::pair<double, int>> slots;
  size_t len = 0;
  size_t want = 0;  // the requested k (may exceed slots.size() when k > n)

  KBestHeap(int k, int n) : want(static_cast<size_t>(k)) {
    slots.resize(std::min(static_cast<size_t>(k), static_cast<size_t>(n)));
  }

  bool full() const { return len == want; }
  double kth() const { return slots.front().first; }

  URANK_KERNEL void Offer(double stat, int id) {
    const std::pair<double, int> cand{stat, id};
    if (len < slots.size()) {
      slots[len++] = cand;
      std::push_heap(slots.begin(), slots.begin() + static_cast<long>(len));
    } else if (cand < slots.front()) {
      std::pop_heap(slots.begin(), slots.begin() + static_cast<long>(len));
      slots[len - 1] = cand;
      std::push_heap(slots.begin(), slots.begin() + static_cast<long>(len));
    }
  }

  // Drains into the (statistic asc, id asc) ranked answer.
  std::vector<RankedTuple> Ranked() {
    std::sort_heap(slots.begin(), slots.begin() + static_cast<long>(len));
    std::vector<RankedTuple> out(len);
    for (size_t i = 0; i < len; ++i) {
      out[i] = RankedTuple{slots[i].second, slots[i].first};
    }
    return out;
  }
};

// One Bernoulli(p) trial folded into a pmf truncated at `cap` entries:
// exact counts in [0, cap-2], lumped "count >= cap-1" tail at cap-1.
// `*len` is the live prefix of `pmf` (capacity cap, allocated upfront).
URANK_KERNEL void TruncatedConvolveTrial(double* pmf, size_t* len,
                                         size_t cap, double p) {
  if (p <= 0.0) return;
  const size_t n = *len;
  if (n < cap) {
    // urank-lint: allow(kernel-vectorize) — sequential in-place backward
    // convolution; vectorizing would reassociate the CDF the bound reads.
    pmf[n] = pmf[n - 1] * p;
    for (size_t c = n - 1; c > 0; --c) {
      pmf[c] = pmf[c] * (1.0 - p) + pmf[c - 1] * p;
    }
    pmf[0] *= (1.0 - p);
    *len = n + 1;
  } else {
    // A count already >= cap-1 stays there whatever the trial does; the
    // tail only gains the promotions from cap-2.
    pmf[cap - 1] += pmf[cap - 2] * p;
    // urank-lint: allow(kernel-vectorize)
    for (size_t c = cap - 2; c > 0; --c) {
      pmf[c] = pmf[c] * (1.0 - p) + pmf[c - 1] * p;
    }
    pmf[0] *= (1.0 - p);
  }
}

// Absolute slack subtracted from phi in the stop tests. The bounds are
// proven for exact arithmetic, but the bounding CDFs are floating-point
// sums: when the true CDF equals phi exactly (systematic at phi = 1,
// where a certain-tuple prefix makes CDF_Y(kth + 1) = 1), the computed
// sum can land a few ulps below it and fire the stop spuriously — while
// the unpruned kernel's QuantileFromPmf, crossing the same threshold on
// its own rounded sums, keeps the tuple. Requiring the computed bound to
// clear phi by this margin makes the test strictly conservative: any
// unscanned tuple's true CDF at the k-th rank then sits far below phi
// relative to summation error, so its rounded CDF cannot cross either.
// Declining to stop never affects the answer, only the scan length.
constexpr double kPruneStopSlack = 1e-9;

}  // namespace

URANK_KERNEL PrunedTopKResult TupleQuantileRankTopKPrune(
    const PreparedTupleRelation& prepared, int k, double phi,
    TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  const TupleRelation& rel = prepared.relation();
  const std::vector<int>& order = prepared.rank_order();
  const int n = rel.size();
  PrunedTopKResult result;
  result.prune_stop_position = n;
  if (n == 0) return result;

  const auto entries = prepared.SweepEntries(ties);
  const std::vector<size_t>& starts = entries->starts;
  const int chunks = static_cast<int>(starts.size()) - 1;
  const internal::AbsentContext absent(rel);
  internal::KernelArena arena;
  const vk::KernelOps& ops = vk::Active();
  KBestHeap heap(k, n);
  long long scanned = 0;
  bool stopped = false;

  // Run-boundary prune test: with Y the Poisson binomial over the flushed
  // per-rule masses (the sweep's own pmf), every unscanned tuple's
  // quantile is >= Q_phi(Y) - 1; stop once CDF_Y(kth + 1) < phi, which
  // makes that lower bound strictly exceed the current k-th best.
  const internal::TupleSweepStopFn stop = [&](size_t next_pos,
                                              const AlignedBuf& pmf) {
    if (next_pos >= static_cast<size_t>(n)) return false;
    if (!heap.full()) return false;
    const size_t limit = static_cast<size_t>(heap.kth()) + 2;
    if (limit >= pmf.size()) return false;  // CDF over all of pmf is 1
    double cdf = 0.0;
    for (size_t c = 0; c < limit; ++c) {
      // Early-exit threshold scan, same discipline as QuantileFromPmf.
      // urank-lint: allow(kernel-vectorize)
      cdf += pmf[c];
      if (cdf >= phi - kPruneStopSlack) return false;
    }
    stopped = true;
    result.prune_stop_position = static_cast<long long>(next_pos);
    return true;
  };

  // Serial execution of the identical deterministic chunk grid the
  // unpruned kernel runs (chunk 0, 1, ... from the memoized entry table),
  // with the exact Definition-7 mixture per tuple — so every quantile
  // matches the unpruned sweep bit-for-bit.
  for (int chunk = 0; chunk < chunks && !stopped; ++chunk) {
    // Acquire the highest slot first (see ForEachTupleRankDistribution).
    AlignedBuf& absent_buf = arena.Doubles(5);
    AlignedBuf& dist = arena.Doubles(4);
    dist.assign(static_cast<size_t>(n) + 1, 0.0);
    size_t dirty = 0;  // high-water mark of the nonzero prefix of dist
    internal::SweepAppearChunk(
        rel, order, ties, starts[static_cast<size_t>(chunk)],
        starts[static_cast<size_t>(chunk) + 1],
        internal::TupleSweepEntryRow(entries.get(), chunk), &arena,
        [&](int i, const AlignedBuf& appear) {
          const TLTuple& t = rel.tuple(i);
          const size_t na = appear.size();
          if (dirty > na) {
            std::fill(dist.begin() + static_cast<long>(na),
                      dist.begin() + static_cast<long>(dirty), 0.0);
          }
          ops.scale(dist.data(), appear.data(), t.prob, na);
          size_t hi = na;
          if (t.prob < 1.0 - internal::kTupleSweepProbEps) {
            const int r = rel.rule_of(i);
            const double cond = std::clamp(
                (rel.rule_prob_sum(r) - t.prob) / (1.0 - t.prob), 0.0, 1.0);
            absent.ConditionalWorldSize(ops, r, cond, &absent_buf);
            ops.scale_add(dist.data(), absent_buf.data(), 1.0 - t.prob,
                          absent_buf.size());
            hi = std::max(hi, absent_buf.size());
          }
          dirty = hi;
          URANK_DCHECK_NORMALIZED(dist);
          ++scanned;
          heap.Offer(static_cast<double>(QuantileFromPmf(
                         std::span<const double>(dist.data(), dist.size()),
                         phi)),
                     t.id);
        },
        &stop);
  }
  result.tuples_scanned = scanned;
  result.topk = heap.Ranked();
  return result;
}

URANK_KERNEL PrunedTopKResult AttrQuantileRankTopKPrune(
    const PreparedAttrRelation& prepared, int k, double phi, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  const AttrRelation& rel = prepared.relation();
  const std::vector<int>& order = prepared.escore_order();
  const std::vector<double>& escores = prepared.expected_scores();
  const std::vector<internal::SortedPdf>& pdfs = prepared.sorted_pdfs();
  const internal::ValueUniverse& uni = prepared.universe();
  const int n = rel.size();
  PrunedTopKResult result;
  result.prune_stop_position = n;
  if (n == 0) return result;

  // Geometric value ladder v = vmax/2, vmax/4, ..., a pure function of
  // the relation. Markov's inequality needs non-negative support, so a
  // relation with any negative value gets an empty ladder (full scan).
  std::vector<double> ladder;
  if (!uni.values.empty() && uni.values.front() >= 0.0) {
    double v = uni.values.back() / 2.0;
    for (int step = 0; step < 8 && v > 0.0; ++step, v /= 2.0) {
      ladder.push_back(v);
    }
  }
  // Truncated Poisson binomials Y(v): exact on [0, cap-2], lumped tail.
  const size_t cap = static_cast<size_t>(k) + 64;
  std::vector<std::vector<double>> ypmf(ladder.size());
  std::vector<size_t> ylen(ladder.size(), 1);
  for (auto& pmf : ypmf) {
    pmf.assign(cap, 0.0);
    pmf[0] = 1.0;
  }

  // Per-worker scratch for the exact per-tuple DP; block results land in
  // disjoint quant[] entries, so the parallel section is deterministic.
  constexpr int kBlock = 64;
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::AlignedBuf> pmf_scratch(
      static_cast<size_t>(workers));
  std::vector<std::vector<double>> dist(static_cast<size_t>(workers));
  std::vector<int> quant(kBlock, 0);
  KBestHeap heap(k, n);
  long long scanned = 0;
  bool stopped = false;

  for (int block = 0; block < n && !stopped; block += kBlock) {
    const int count = std::min(kBlock, n - block);
    const ForRunInfo info = ParallelForPlaced(
        count, workers, par.placement, [&](int j, int slot) {
          const int i = order[static_cast<size_t>(block + j)];
          const size_t s = static_cast<size_t>(slot);
          AttrRankDistributionInto(rel, pdfs, i, ties, &pmf_scratch[s],
                                   &dist[s]);
          quant[static_cast<size_t>(j)] = QuantileFromPmf(dist[s], phi);
        });
    if (report != nullptr) {
      KernelReport used;
      used.threads_used = info.participants;
      used.nodes_used = info.nodes_used;
      report->Merge(used);
    }
    // Serial bookkeeping in stream order: heap offers, then the ladder
    // pmfs, then the stop test — all pure functions of the relation.
    for (int j = 0; j < count; ++j) {
      const int i = order[static_cast<size_t>(block + j)];
      heap.Offer(static_cast<double>(quant[static_cast<size_t>(j)]),
                 rel.tuple(i).id);
    }
    for (int j = 0; j < count; ++j) {
      const int i = order[static_cast<size_t>(block + j)];
      for (size_t l = 0; l < ladder.size(); ++l) {
        const double p = std::min(pdfs[static_cast<size_t>(i)].PrGreater(
                                      ladder[l]),
                                  1.0);
        TruncatedConvolveTrial(ypmf[l].data(), &ylen[l], cap, p);
      }
    }
    scanned += count;
    if (heap.full() && block + count < n) {
      const double e_last =
          escores[static_cast<size_t>(order[static_cast<size_t>(
              block + count - 1)])];
      const size_t kth = static_cast<size_t>(heap.kth());
      if (kth <= cap - 2) {
        for (size_t l = 0; l < ladder.size() && !stopped; ++l) {
          if (ylen[l] <= kth + 1) continue;  // CDF_Y(kth) is still 1
          double bound = e_last / ladder[l];
          if (bound >= phi - kPruneStopSlack) continue;
          bool over = false;
          for (size_t c = 0; c <= kth; ++c) {
            // urank-lint: allow(kernel-vectorize) — early-exit CDF scan.
            bound += ypmf[l][c];
            if (bound >= phi - kPruneStopSlack) {
              over = true;
              break;
            }
          }
          if (!over) {
            stopped = true;
            result.prune_stop_position =
                static_cast<long long>(block + count);
          }
        }
      }
    }
  }
  if (report != nullptr) {
    KernelReport used;
    for (const internal::AlignedBuf& buf : pmf_scratch) {
      used.arena_bytes +=
          static_cast<std::uint64_t>(buf.capacity()) * sizeof(double);
    }
    report->Merge(used);
  }
  result.tuples_scanned = scanned;
  result.topk = heap.Ranked();
  return result;
}

}  // namespace urank
