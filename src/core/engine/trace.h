// RAII span tracing for the QueryEngine execution path.
//
// A trace session records nestable, named spans — prepare, per-semantics
// kernel time, statistic-cache computations, ParallelFor chunk scheduling
// — into a fixed-capacity in-memory ring and exports them as a Chrome
// trace_event JSON document that loads directly in chrome://tracing or
// Perfetto. Spans opened on worker-pool threads record under their own
// synthetic thread id, so a flame chart shows the per-chunk work fanning
// out across workers beneath the engine span that scheduled it.
//
// Cost model:
//   * No session active (the default): a span is one relaxed atomic load.
//   * Session active: span destruction claims one preallocated slot with
//     a fetch_add and writes a fixed-size event — no allocation, no
//     locks. When the buffer fills, new events are dropped (and counted)
//     rather than wrapping, so the session keeps the earliest spans — the
//     ones that explain a flame chart's structure.
//   * Compiled out under -DURANK_METRICS=OFF (URANK_METRICS_DISABLED):
//     spans are empty objects, Start() refuses to enable, and the
//     exporter emits a valid empty document.
//
// Span names must be string literals (or otherwise outlive the session):
// events store the pointer, never a copy. This is what keeps recording
// allocation-free.
//
// Single-writer-session discipline: Start/Stop/export are controlled by
// one coordinating thread (a benchmark harness, examples/metrics_dump, a
// service's debug endpoint); spans may come from any thread in between.

#ifndef URANK_CORE_ENGINE_TRACE_H_
#define URANK_CORE_ENGINE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace urank {
namespace trace {

// One completed span. Timestamps are nanoseconds since session start.
struct Event {
  const char* name = nullptr;      // static storage, never owned
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;           // synthetic thread id, stable per thread
  std::uint32_t depth = 0;         // nesting depth within its thread
  const char* arg_name = nullptr;  // optional numeric argument
  long long arg = 0;
};

// Fixed-capacity trace ring shared by every Span in the process.
class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  // The process-wide recorder all library spans record into.
  static Recorder& Global();

  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Clears prior events, allocates `capacity` slots and enables
  // recording. Aborts if capacity is 0. No-op in compiled-out builds.
  void Start(std::size_t capacity = kDefaultCapacity);

  // Disables recording. Events recorded so far stay readable.
  void Stop();

  bool enabled() const;

  // Records one completed event; drops (and counts) it when the buffer
  // is full. Called by Span — library code rarely needs it directly.
  void Record(const Event& event);

  // Completed events in record order. Requires the session to be stopped
  // (reading while spans are recording would race the slot writes).
  std::vector<Event> Events() const;

  // Events dropped since Start() because the buffer was full.
  std::uint64_t dropped() const;

  // Chrome trace_event JSON ("traceEvents" array of complete "X" events
  // plus thread-name metadata), loadable in chrome://tracing / Perfetto.
  // Requires the session to be stopped.
  std::string ChromeTraceJson() const;

  // Nanoseconds since session start (0 when no session ever started).
  std::uint64_t NowNs() const;

 private:
  struct Impl;
  Impl* impl_;
};

// RAII span: opens at construction, records into Recorder::Global() at
// destruction. Inactive (and near-free) when no session is enabled at
// construction time.
class Span {
 public:
  explicit Span(const char* name) : Span(name, nullptr, 0) {}
  Span(const char* name, const char* arg_name, long long arg);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if !defined(URANK_METRICS_DISABLED)
  const char* name_;
  const char* arg_name_;
  long long arg_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
#endif
};

}  // namespace trace
}  // namespace urank

// Convenience macros for instrumenting a scope. Usable in any block;
// names must be string literals.
#define URANK_TRACE_CONCAT_INNER(a, b) a##b
#define URANK_TRACE_CONCAT(a, b) URANK_TRACE_CONCAT_INNER(a, b)
#define URANK_TRACE_SPAN(name) \
  ::urank::trace::Span URANK_TRACE_CONCAT(urank_trace_span_, __LINE__)(name)
#define URANK_TRACE_SPAN_ARG(name, arg_name, arg)                         \
  ::urank::trace::Span URANK_TRACE_CONCAT(urank_trace_span_, __LINE__)(   \
      name, arg_name, static_cast<long long>(arg))

#endif  // URANK_CORE_ENGINE_TRACE_H_
