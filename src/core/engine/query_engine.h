// QueryEngine: the prepared-state query surface of the library.
//
// The legacy facade (core/query.h) re-derives every piece of shared state
// — sort orders, prefix sums, rank-distribution matrices — on each call
// and aborts on invalid options. The engine splits that into an explicit
// lifecycle:
//
//   1. Prepare(relation)  -> shared_ptr<const Prepared*Relation>
//   2. QueryEngine engine(prepared);
//   3. engine.Run(query)  -> QueryResult{status, answer, stats}
//
// Preparation is paid once per relation; every Run against the same engine
// reuses the prepared sort orders and the memoized statistic vectors, so a
// second query — even with a different k — is a selection over cached
// state. RunBatch evaluates many queries concurrently over that shared
// read-only state.
//
// Error taxonomy (recoverable — Run returns a status instead of aborting):
//   kOk                      — query executed; answer/stats are valid.
//   kInvalidK                — options.k < 1 (every semantics needs k).
//   kInvalidPhi              — kQuantileRank with phi outside (0,1].
//   kInvalidThreshold        — kPTk with threshold outside (0,1].
//   kWorldCountNotEnumerable — kUTopk on an attribute-level relation whose
//                              world count exceeds kMaxEnumerableWorlds
//                              (the enumeration would not terminate in any
//                              reasonable time).
// Malformed *relations* (NaN scores, unnormalized pdfs, bad rule indices)
// are still hard contract violations caught by URANK_CHECK at model
// construction — the status codes cover per-query parameters only, which
// is what a long-lived service wants to survive. The legacy facade keeps
// its abort-on-bad-options contract by checking the returned status.
//
// Thread-safety: a QueryEngine holds only shared_ptr<const ...> prepared
// state, which is internally synchronized (see prepared_relation.h). Run
// and RunBatch are const and may be called from any number of threads.

#ifndef URANK_CORE_ENGINE_QUERY_ENGINE_H_
#define URANK_CORE_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine/mutable_relation.h"
#include "core/engine/prepared_relation.h"
#include "core/query.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/parallel.h"

namespace urank {

// The engine reuses the facade's option struct: it is already the full
// parameter surface (semantics, k, phi, threshold, tie policy).
using RankingQuery = RankingQueryOptions;

// The status taxonomy is also the wire protocol's error contract
// (docs/SERVING.md): each code has a stable numeric wire value (the
// enumerator value below) and a stable identifier-style name (ToString /
// FromString). New codes append at the end; values and names are never
// reused or renumbered once shipped.
enum class QueryStatusCode {
  kOk = 0,
  kInvalidK = 1,
  kInvalidPhi = 2,
  kInvalidThreshold = 3,
  kWorldCountNotEnumerable = 4,
  // Serve-layer codes, produced by urankd (src/serve/) rather than by
  // QueryEngine::Run itself:
  //   kInvalidRequest   — the request line was not a well-formed protocol
  //                       message (bad JSON, wrong version, unknown type or
  //                       semantics name, missing required field).
  //   kUnknownRelation  — the request names a relation the server has not
  //                       loaded.
  //   kOverloaded       — admission control shed the request: the bounded
  //                       queue was full (or the server is draining).
  //   kDeadlineExceeded — the request's deadline expired before execution
  //                       started; it was shed without running.
  kInvalidRequest = 5,
  kUnknownRelation = 6,
  kOverloaded = 7,
  kDeadlineExceeded = 8,
  //   kEpochNotAvailable — the request demanded min_epoch newer than the
  //                        latest published epoch of the relation it ran
  //                        against (read-your-writes gating for mutable
  //                        relations; see QueryRequest::min_epoch).
  kEpochNotAvailable = 9,
};

// Number of QueryStatusCode members. Wire values are dense: every integer
// in [0, kQueryStatusCodeCount) maps to exactly one code, which is what
// the protocol round-trip test iterates over.
inline constexpr int kQueryStatusCodeCount = 10;

// Stable identifier-style name ("ok", "invalid-k", ...).
const char* ToString(QueryStatusCode code);

// Inverse of ToString. Returns false (leaving `*out` untouched) when
// `name` is not a known status name.
bool FromString(std::string_view name, QueryStatusCode* out);

// The stable numeric value `code` travels as on the wire.
int WireValue(QueryStatusCode code);

// Inverse of WireValue. Returns false (leaving `*out` untouched) when
// `value` maps to no code.
bool FromWireValue(int value, QueryStatusCode* out);

struct QueryStatus {
  QueryStatusCode code = QueryStatusCode::kOk;
  // Human-readable detail; empty for kOk. Messages for invalid parameters
  // mirror the URANK_CHECK wording of the one-shot entry points ("k must
  // be >= 1", "phi must be in (0,1]", ...) so facade callers see the same
  // diagnostics they always did.
  std::string message;

  bool ok() const { return code == QueryStatusCode::kOk; }

  static QueryStatus Ok() { return {}; }
};

// Per-query execution statistics.
struct QueryStats {
  // Wall-clock time of the Run call (validation + dispatch + answer
  // assembly), in milliseconds.
  double wall_ms = 0.0;
  // True when the statistic vector this query ranks by was already in the
  // prepared cache (or, for attribute-level expected scores, built eagerly
  // at preparation), so no per-tuple recomputation ran. U-Topk answers are
  // k-specific DPs and are never memoized: always false there.
  bool reused_cache = false;
  // Coarse count of dynamic-program cells (or equivalent inner-loop
  // updates) this query touched; 0 when served from cache. The per-
  // semantics formulas are documented in docs/API.md — the number is for
  // relative comparison between queries, not a precise FLOP count.
  long long dp_cells = 0;
  // Tuples whose statistic required no fresh computation: the full
  // relation size on a cache hit, 0 otherwise.
  long long tuples_pruned = 0;
  // Worker slots the statistic computation actually used (the calling
  // thread included): 1 for serial execution, a cache hit, or a semantics
  // with no parallel kernel.
  int threads_used = 1;
  // Distinct NUMA-node worker groups those slots came from: 1 for serial
  // execution, a cache hit, or a single-node machine.
  int nodes_used = 1;
  // True when EffectiveParallelism reduced the request's resolved thread
  // count — currently only the kNodeLocal clamp to one node's core count.
  bool threads_clamped = false;
  // High-water scratch bytes the parallel kernels' per-worker arenas held;
  // 0 when no arena-backed kernel ran (cache hit, serial-only semantics).
  std::uint64_t arena_bytes = 0;
  // The SIMD dispatch target the vector kernels ran on ("scalar", "avx2",
  // "avx512", "neon") — ToString(ActiveSimdTarget()) at Run time. Static
  // storage; never null. See docs/PERFORMANCE.md for the determinism
  // contract per target.
  const char* simd_target = "scalar";
  // Tuples whose rank statistic the pruned quantile/median kernels
  // actually evaluated before the stopping bound fired; 0 when no pruned
  // kernel ran (prune not requested, other semantics, or a cache hit).
  long long tuples_scanned = 0;
  // Expected-score-order position at which the pruned sweep stopped: the
  // relation size when the bound never fired, -1 when no pruned kernel
  // ran. tuples_scanned <= prune_stop_position always.
  long long prune_stop_position = -1;
  // The epoch of the snapshot this query actually ran against: 0 for an
  // engine over static prepared state, the store's published epoch number
  // for a mutable-backed engine. A whole RunBatch reports one epoch — the
  // snapshot is resolved once per batch.
  std::uint64_t epoch = 0;
};

struct QueryResult {
  QueryStatus status;
  // Valid only when status.ok(); empty otherwise.
  RankingAnswer answer;
  QueryStats stats;
};

// Serve-layer result-cache policy carried by a request. The engine's own
// statistic memo (prepared_relation.h) is unaffected: kBypass means the
// urankd result cache performs neither lookup nor insert for this request.
enum class CacheMode {
  kDefault = 0,
  kBypass = 1,
};

// The one request surface shared by in-process callers and the wire
// protocol: src/serve/protocol.h serializes exactly this struct (plus a
// routing envelope), so a request built in code and a request parsed off a
// socket flow through the same Run path. Replaces the former
// (RankingQuery, set_parallelism) split — parallelism is part of the
// request, not engine state.
struct QueryRequest {
  RankingQueryOptions options;
  // Intra-query parallelism applied to the DP kernels behind statistic-
  // cache misses. Affects execution schedule and QueryStats only — answers
  // are bit-identical for any setting.
  ParallelismOptions parallelism;
  // End-to-end budget in milliseconds, measured from admission. <= 0 means
  // no deadline. Enforced at admission/dequeue time by the serving layer
  // (urankd sheds an expired request with kDeadlineExceeded instead of
  // starting it); a query that has begun executing is never interrupted,
  // and the in-process Run never sheds (its queue wait is zero).
  double deadline_ms = 0.0;
  // Serve-layer result-cache policy (see CacheMode).
  CacheMode cache_mode = CacheMode::kDefault;
  // Opt-in early-stopping for kMedianRank / kQuantileRank: run the pruned
  // top-k kernels (core/quantile_rank.h), which sweep tuples in
  // expected-score order and stop once the remaining suffix provably
  // cannot enter the top-k. Answers are bit-identical to the unpruned
  // kernels; only QueryStats (tuples_scanned, prune_stop_position,
  // dp_cells) and the execution schedule change. A pruned run computes a
  // top-k selection, not the full statistic vector, so it never populates
  // the statistic memo — and when the memo already holds the vector, the
  // cached (cheaper) path is served instead. Ignored for every other
  // semantics.
  bool prune = false;
  // Minimum epoch this query may run against (read-your-writes gating for
  // mutable-backed engines): when the engine's latest published epoch is
  // older, Run fails with kEpochNotAvailable instead of answering from a
  // stale snapshot. 0 (the default) accepts any epoch; engines over
  // static prepared state report epoch 0, so any positive min_epoch fails
  // there.
  std::uint64_t min_epoch = 0;
};

// The snapshot one Run (or one whole RunBatch) executes against,
// resolved exactly once at entry: a consistent epoch even while writers
// publish concurrently. Exactly one of attr/tuple is non-null.
struct ResolvedRelation {
  std::shared_ptr<const PreparedAttrRelation> attr;
  std::shared_ptr<const PreparedTupleRelation> tuple;
  std::uint64_t epoch = 0;
};

// Runs ranking queries against one prepared relation (either model).
// Cheap to copy: holds only shared pointers to immutable prepared state.
class QueryEngine {
 public:
  // Builds the shared per-relation state (sort orders, prefix sums, value
  // universe, id index). The relation is copied into the prepared object.
  static std::shared_ptr<const PreparedAttrRelation> Prepare(
      AttrRelation rel);
  static std::shared_ptr<const PreparedTupleRelation> Prepare(
      TupleRelation rel);

  // Wraps already-prepared state (shareable across engines and threads).
  explicit QueryEngine(std::shared_ptr<const PreparedAttrRelation> prepared);
  explicit QueryEngine(std::shared_ptr<const PreparedTupleRelation> prepared);

  // Wraps a mutable store: every Run resolves the store's latest
  // published snapshot at entry (and a RunBatch resolves it once for the
  // whole batch), so a query always executes against one consistent
  // epoch while writers mutate and publish concurrently. QueryStats
  // reports the epoch served.
  explicit QueryEngine(std::shared_ptr<MutableAttrRelation> store);
  explicit QueryEngine(std::shared_ptr<MutableTupleRelation> store);

  // Convenience: prepare-and-wrap in one step.
  explicit QueryEngine(AttrRelation rel);
  explicit QueryEngine(TupleRelation rel);

  // Checks the query's parameters against the taxonomy above without
  // executing anything. Run calls this first.
  QueryStatus Validate(const RankingQuery& query) const;

  // Executes one request. Never aborts on bad query parameters — check
  // result.status. Safe to call concurrently. deadline_ms and cache_mode
  // are serving-layer concerns (see QueryRequest); the in-process path
  // carries them through untouched.
  QueryResult Run(const QueryRequest& request) const;

  // Executes `requests` over the shared prepared state on the process-wide
  // worker pool with up to `threads` workers (threads <= 0 selects the
  // hardware concurrency). Results are in input order and identical to
  // running each request alone — memoized statistics are computed once
  // under single-flight discipline no matter how many requests need them.
  // Per-request intra-query parallelism composes with this: worker threads
  // running a kernel participate in draining its chunks, so nesting cannot
  // deadlock.
  std::vector<QueryResult> RunBatch(const std::vector<QueryRequest>& requests,
                                    int threads = 0) const;

  // DEPRECATED compatibility wrappers: the pre-QueryRequest surface. They
  // wrap the query in a QueryRequest carrying the engine-level parallelism
  // set via set_parallelism() and forward to the request overloads. New
  // code should build a QueryRequest (which makes parallelism, deadline
  // and cache policy explicit and per-request) instead.
  QueryResult Run(const RankingQuery& query) const;
  std::vector<QueryResult> RunBatch(const std::vector<RankingQuery>& queries,
                                    int threads = 0) const;

  // DEPRECATED side-channel consumed only by the legacy Run/RunBatch
  // wrappers above: intra-query parallelism for the DP kernels behind
  // cache misses. The QueryRequest overloads ignore this and use
  // QueryRequest::parallelism.
  void set_parallelism(const ParallelismOptions& par) { par_ = par; }
  const ParallelismOptions& parallelism() const { return par_; }

  // The snapshot a Run entered now would execute against: the static
  // prepared state, or the mutable store's latest published epoch.
  ResolvedRelation Resolve() const;

  // The static prepared state this engine wraps; both null for a
  // mutable-backed engine (use Resolve()).
  const std::shared_ptr<const PreparedAttrRelation>& attr() const {
    return attr_;
  }
  const std::shared_ptr<const PreparedTupleRelation>& tuple() const {
    return tuple_;
  }

  // The mutable store this engine wraps; both null for a static engine.
  const std::shared_ptr<MutableAttrRelation>& mutable_attr() const {
    return mutable_attr_;
  }
  const std::shared_ptr<MutableTupleRelation>& mutable_tuple() const {
    return mutable_tuple_;
  }

 private:
  QueryStatus ValidateResolved(const RankingQuery& query,
                               const ResolvedRelation& resolved) const;
  QueryResult RunResolved(const QueryRequest& request,
                          const ResolvedRelation& resolved) const;

  std::shared_ptr<const PreparedAttrRelation> attr_;
  std::shared_ptr<const PreparedTupleRelation> tuple_;
  std::shared_ptr<MutableAttrRelation> mutable_attr_;
  std::shared_ptr<MutableTupleRelation> mutable_tuple_;
  ParallelismOptions par_;
};

}  // namespace urank

#endif  // URANK_CORE_ENGINE_QUERY_ENGINE_H_
