// QueryEngine: the prepared-state query surface of the library.
//
// The legacy facade (core/query.h) re-derives every piece of shared state
// — sort orders, prefix sums, rank-distribution matrices — on each call
// and aborts on invalid options. The engine splits that into an explicit
// lifecycle:
//
//   1. Prepare(relation)  -> shared_ptr<const Prepared*Relation>
//   2. QueryEngine engine(prepared);
//   3. engine.Run(query)  -> QueryResult{status, answer, stats}
//
// Preparation is paid once per relation; every Run against the same engine
// reuses the prepared sort orders and the memoized statistic vectors, so a
// second query — even with a different k — is a selection over cached
// state. RunBatch evaluates many queries concurrently over that shared
// read-only state.
//
// Error taxonomy (recoverable — Run returns a status instead of aborting):
//   kOk                      — query executed; answer/stats are valid.
//   kInvalidK                — options.k < 1 (every semantics needs k).
//   kInvalidPhi              — kQuantileRank with phi outside (0,1].
//   kInvalidThreshold        — kPTk with threshold outside (0,1].
//   kWorldCountNotEnumerable — kUTopk on an attribute-level relation whose
//                              world count exceeds kMaxEnumerableWorlds
//                              (the enumeration would not terminate in any
//                              reasonable time).
// Malformed *relations* (NaN scores, unnormalized pdfs, bad rule indices)
// are still hard contract violations caught by URANK_CHECK at model
// construction — the status codes cover per-query parameters only, which
// is what a long-lived service wants to survive. The legacy facade keeps
// its abort-on-bad-options contract by checking the returned status.
//
// Thread-safety: a QueryEngine holds only shared_ptr<const ...> prepared
// state, which is internally synchronized (see prepared_relation.h). Run
// and RunBatch are const and may be called from any number of threads.

#ifndef URANK_CORE_ENGINE_QUERY_ENGINE_H_
#define URANK_CORE_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine/prepared_relation.h"
#include "core/query.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/parallel.h"

namespace urank {

// The engine reuses the facade's option struct: it is already the full
// parameter surface (semantics, k, phi, threshold, tie policy).
using RankingQuery = RankingQueryOptions;

enum class QueryStatusCode {
  kOk,
  kInvalidK,
  kInvalidPhi,
  kInvalidThreshold,
  kWorldCountNotEnumerable,
};

// Stable identifier-style name ("ok", "invalid-k", ...).
const char* ToString(QueryStatusCode code);

struct QueryStatus {
  QueryStatusCode code = QueryStatusCode::kOk;
  // Human-readable detail; empty for kOk. Messages for invalid parameters
  // mirror the URANK_CHECK wording of the one-shot entry points ("k must
  // be >= 1", "phi must be in (0,1]", ...) so facade callers see the same
  // diagnostics they always did.
  std::string message;

  bool ok() const { return code == QueryStatusCode::kOk; }

  static QueryStatus Ok() { return {}; }
};

// Per-query execution statistics.
struct QueryStats {
  // Wall-clock time of the Run call (validation + dispatch + answer
  // assembly), in milliseconds.
  double wall_ms = 0.0;
  // True when the statistic vector this query ranks by was already in the
  // prepared cache (or, for attribute-level expected scores, built eagerly
  // at preparation), so no per-tuple recomputation ran. U-Topk answers are
  // k-specific DPs and are never memoized: always false there.
  bool reused_cache = false;
  // Coarse count of dynamic-program cells (or equivalent inner-loop
  // updates) this query touched; 0 when served from cache. The per-
  // semantics formulas are documented in docs/API.md — the number is for
  // relative comparison between queries, not a precise FLOP count.
  long long dp_cells = 0;
  // Tuples whose statistic required no fresh computation: the full
  // relation size on a cache hit, 0 otherwise.
  long long tuples_pruned = 0;
  // Worker slots the statistic computation actually used (the calling
  // thread included): 1 for serial execution, a cache hit, or a semantics
  // with no parallel kernel.
  int threads_used = 1;
  // High-water scratch bytes the parallel kernels' per-worker arenas held;
  // 0 when no arena-backed kernel ran (cache hit, serial-only semantics).
  std::uint64_t arena_bytes = 0;
  // The SIMD dispatch target the vector kernels ran on ("scalar", "avx2",
  // "avx512", "neon") — ToString(ActiveSimdTarget()) at Run time. Static
  // storage; never null. See docs/PERFORMANCE.md for the determinism
  // contract per target.
  const char* simd_target = "scalar";
};

struct QueryResult {
  QueryStatus status;
  // Valid only when status.ok(); empty otherwise.
  RankingAnswer answer;
  QueryStats stats;
};

// Runs ranking queries against one prepared relation (either model).
// Cheap to copy: holds only shared pointers to immutable prepared state.
class QueryEngine {
 public:
  // Builds the shared per-relation state (sort orders, prefix sums, value
  // universe, id index). The relation is copied into the prepared object.
  static std::shared_ptr<const PreparedAttrRelation> Prepare(
      AttrRelation rel);
  static std::shared_ptr<const PreparedTupleRelation> Prepare(
      TupleRelation rel);

  // Wraps already-prepared state (shareable across engines and threads).
  explicit QueryEngine(std::shared_ptr<const PreparedAttrRelation> prepared);
  explicit QueryEngine(std::shared_ptr<const PreparedTupleRelation> prepared);

  // Convenience: prepare-and-wrap in one step.
  explicit QueryEngine(AttrRelation rel);
  explicit QueryEngine(TupleRelation rel);

  // Checks the query's parameters against the taxonomy above without
  // executing anything. Run calls this first.
  QueryStatus Validate(const RankingQuery& query) const;

  // Executes one query. Never aborts on bad query parameters — check
  // result.status. Safe to call concurrently.
  QueryResult Run(const RankingQuery& query) const;

  // Executes `queries` over the shared prepared state on the process-wide
  // worker pool with up to `threads` workers (threads <= 0 selects the
  // hardware concurrency). Results are in input order and identical to
  // running each query alone — memoized statistics are computed once under
  // single-flight discipline no matter how many queries need them. Intra-
  // query parallelism (set_parallelism) composes with this: worker threads
  // running a kernel participate in draining its chunks, so nesting cannot
  // deadlock.
  std::vector<QueryResult> RunBatch(const std::vector<RankingQuery>& queries,
                                    int threads = 0) const;

  // Intra-query parallelism applied by Run/RunBatch to the DP kernels
  // behind cache misses. Defaults to serial. Affects execution schedule
  // and QueryStats only — answers are bit-identical for any setting.
  void set_parallelism(const ParallelismOptions& par) { par_ = par; }
  const ParallelismOptions& parallelism() const { return par_; }

  // The prepared state this engine wraps; exactly one is non-null.
  const std::shared_ptr<const PreparedAttrRelation>& attr() const {
    return attr_;
  }
  const std::shared_ptr<const PreparedTupleRelation>& tuple() const {
    return tuple_;
  }

 private:
  std::shared_ptr<const PreparedAttrRelation> attr_;
  std::shared_ptr<const PreparedTupleRelation> tuple_;
  ParallelismOptions par_;
};

}  // namespace urank

#endif  // URANK_CORE_ENGINE_QUERY_ENGINE_H_
