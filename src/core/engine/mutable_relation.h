// Mutable relations: incremental ingestion over the prepared-state query
// surface, with copy-on-write epoch snapshots.
//
// A Mutable*Relation owns the *logical contents* of one uncertain relation
// — tuples in arrival order, each tagged alive/dead, tuple-level entries
// additionally tagged with the caller-chosen exclusion-rule key — plus the
// incremental preparation state needed to publish a PreparedRelation
// without re-running the O(N log N) from-scratch prepare:
//
//   * a *base* sorted run over the already-consolidated prefix of the
//     entry log (rank order for tuple-level; expected-score order and the
//     sorted (value, mass) slice of the q(v) universe for attribute-level),
//   * a *delta* of entries appended since the last consolidation, sorted
//     at publish time (reusing the same run/merge discipline as
//     core/engine/prepared_builder.h), and
//   * tombstones: Delete marks an entry dead; dead entries are filtered
//     out of the merged order at publish time and physically compacted
//     once they outnumber the live ones.
//
// Publish() merges base + delta (a 2-way merge of sorted runs), rebuilds
// the derived vectors with one sequential pass, hands them to the
// Prepared*Relation seed constructors, and atomically swaps the new
// snapshot in under a fresh epoch number. Readers call Snapshot() and keep
// a shared_ptr<const Prepared*Relation>: in-flight queries keep reading
// the epoch they resolved, unaffected by concurrent writers (copy-on-
// write — published prepared state is never modified).
//
// Bit-identity contract (the property tests/core/epoch_identity_test.cc
// enforces): every published epoch is bit-identical — EXPECT_EQ on every
// double of every semantics' answer, for any thread count × topology ×
// placement — to eagerly preparing the same logical contents, defined as:
//
//   * live entries in arrival order (an Update re-inserts at the tail:
//     it is a Delete plus an Insert, and its tie-break index moves);
//   * exclusion rules grouped by key, numbered by first live appearance
//     in arrival order, members in arrival order — exactly the
//     PreparedTupleRelationBuilder convention, and exactly what an eager
//     caller building a rules vector in one pass over the live entries
//     would construct. Negative keys mean independent (singleton rules
//     supplied by the TupleRelation constructor).
//
// The mechanics are the prepared_builder ones: the merge of sorted runs
// under a (key desc, index asc) total order equals the eager std::sort
// output because indices are unique; prefix probability sums are one
// plain left-to-right pass over the merged order (never stitched partial
// sums); the value universe collapses the merged ascending (value, mass)
// sequence with the exact accumulation BuildValueUniverse performs.
// Tombstone filtering and arrival-order compaction are both monotone in
// the entry index, so they preserve those orders.
//
// x-relations: rule keys are first-class and fully general — a rule may
// gain and lose members across any number of epochs, and an Update may
// move a tuple between rules (cross-x-relation rule edit). Mutations are
// gated by the same model contract TupleRelation::Validate enforces
// (per-rule live probability mass <= 1 + tolerance, summed in arrival
// order so the comparison is bit-for-bit the one Validate performs), so
// a Publish can never abort in the model constructor.
//
// Thread-safety: any number of reader threads may call Snapshot()/epoch()
// concurrently with one another and with writers. Mutators and Publish
// are serialized on an internal writer mutex — concurrent writers are
// safe but see arrival order chosen by lock order. Batch Apply is
// all-or-nothing: on the first failing op the whole batch is rolled back
// and the logical contents are untouched.

#ifndef URANK_CORE_ENGINE_MUTABLE_RELATION_H_
#define URANK_CORE_ENGINE_MUTABLE_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine/prepared_relation.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// Maintenance knobs. Defaults suit serving workloads; the epoch-identity
// suite sweeps delta_merge_threshold down to 1 (consolidate every
// publish) to cover every merge schedule.
struct MutableRelationOptions {
  // Pending delta entries (live, since the last consolidation) at or above
  // which Publish folds the delta into the base run instead of re-merging
  // it on every publish.
  std::size_t delta_merge_threshold = 1024;
  // Dead entries are physically compacted out of the log when they
  // outnumber the live entries AND exceed this floor (avoids churning
  // tiny relations).
  std::size_t compact_min_dead = 64;
};

// One published epoch: the immutable prepared state plus its number.
// Epoch numbers are per-store, monotonically increasing, starting at 1
// for the snapshot published by the constructor.
template <typename Prepared>
struct EpochSnapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const Prepared> prepared;
};

using TupleEpochSnapshot = EpochSnapshot<PreparedTupleRelation>;
using AttrEpochSnapshot = EpochSnapshot<PreparedAttrRelation>;

// One mutation against a tuple-level store, for batch Apply.
struct TupleMutation {
  enum class Op { kInsert, kDelete, kUpdate };
  Op op = Op::kInsert;
  // kInsert/kUpdate payload (tuple.id names the target for kUpdate).
  TLTuple tuple;
  long long rule_key = -1;
  // kDelete target.
  int id = 0;
};

// One mutation against an attribute-level store.
struct AttrMutation {
  enum class Op { kInsert, kDelete, kUpdate };
  Op op = Op::kInsert;
  AttrTuple tuple;  // kInsert/kUpdate payload
  int id = 0;       // kDelete target
};

// Tuple-level mutable store (x-relation model).
class MutableTupleRelation {
 public:
  // Starts empty; publishes epoch 1 (an empty relation) immediately, so
  // Snapshot() never returns a null prepared pointer.
  explicit MutableTupleRelation(MutableRelationOptions options = {});

  // Seeds the logical contents from an existing relation: tuples in index
  // order, each keyed by its rule index (so rules are preserved, with
  // members canonicalized into arrival order), then publishes epoch 1.
  explicit MutableTupleRelation(const TupleRelation& rel,
                                MutableRelationOptions options = {});

  MutableTupleRelation(const MutableTupleRelation&) = delete;
  MutableTupleRelation& operator=(const MutableTupleRelation&) = delete;

  // Mutators. Return false (logical contents untouched) with a
  // description in *error (when non-null) on a contract violation:
  // duplicate live id, probability outside (0,1], non-finite score,
  // unknown delete/update target, or a rule whose live mass would exceed
  // 1 + tolerance. Mutations become visible to readers only at Publish.
  bool Insert(const TLTuple& tuple, long long rule_key, std::string* error);
  bool Delete(int id, std::string* error);
  // Delete + re-insert at the tail (the tuple's tie-break index moves to
  // the end of the arrival order); may change the rule key.
  bool Update(const TLTuple& tuple, long long rule_key, std::string* error);

  // All-or-nothing batch: applies ops in order; on the first failure the
  // whole batch is rolled back and false is returned with the failing
  // op's index and reason in *error.
  bool Apply(const std::vector<TupleMutation>& ops, std::string* error);

  // Builds and atomically publishes a new epoch reflecting every mutation
  // so far. Idempotent: with no pending mutations the current snapshot is
  // returned unchanged (no epoch bump).
  TupleEpochSnapshot Publish();

  // The latest published snapshot. Never null.
  TupleEpochSnapshot Snapshot() const;

  std::uint64_t epoch() const;

  // Bumps the epoch number (keeping the current prepared state) so the
  // next/current epoch is >= `epoch`. Used by the serving registry when a
  // reload replaces a store: cached results keyed by the old store's
  // epochs must not alias the new store's.
  void EnsureEpochAtLeast(std::uint64_t epoch);

  // Live tuples / mutations not yet published.
  long long live_size() const;
  bool dirty() const;

  // Maintenance counters (lifetime totals, for tests and gauges).
  std::uint64_t delta_merges() const;
  std::uint64_t compactions() const;

 private:
  struct Entry {
    TLTuple tuple;
    long long rule_key = -1;
    bool alive = true;
  };

  bool InsertLocked(const TLTuple& tuple, long long rule_key,
                    std::string* error);
  bool DeleteLocked(int id, std::string* error);
  double LiveRuleMass(long long rule_key) const;
  void CompactLocked();
  void PublishLocked();

  const MutableRelationOptions options_;

  mutable std::mutex writer_mu_;
  std::vector<Entry> entries_;  // arrival order; tombstoned, never reordered
  std::unordered_map<int, std::size_t> live_by_id_;
  // rule key (>= 0) -> entry indices in arrival order (dead ones retained
  // until compaction; LiveRuleMass skips them).
  std::unordered_map<long long, std::vector<std::size_t>> rule_members_;
  std::size_t live_count_ = 0;
  // entries_[0, delta_start_) are covered by base_run_.
  std::size_t delta_start_ = 0;
  // Entry indices sorted (score desc, index asc); only entries alive at
  // consolidation time — later tombstones are filtered at publish.
  std::vector<std::size_t> base_run_;
  bool dirty_ = true;
  std::uint64_t delta_merges_ = 0;
  std::uint64_t compactions_ = 0;

  mutable std::mutex snapshot_mu_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const PreparedTupleRelation> snapshot_;
};

// Attribute-level mutable store.
class MutableAttrRelation {
 public:
  explicit MutableAttrRelation(MutableRelationOptions options = {});
  explicit MutableAttrRelation(const AttrRelation& rel,
                               MutableRelationOptions options = {});

  MutableAttrRelation(const MutableAttrRelation&) = delete;
  MutableAttrRelation& operator=(const MutableAttrRelation&) = delete;

  // Mutators; same visibility and failure contract as the tuple-level
  // store, gated by AttrRelation::Validate's per-tuple rules (non-empty
  // pdf, probabilities in (0,1] summing to 1, finite distinct values).
  bool Insert(const AttrTuple& tuple, std::string* error);
  bool Delete(int id, std::string* error);
  bool Update(const AttrTuple& tuple, std::string* error);
  bool Apply(const std::vector<AttrMutation>& ops, std::string* error);

  AttrEpochSnapshot Publish();
  AttrEpochSnapshot Snapshot() const;
  std::uint64_t epoch() const;
  void EnsureEpochAtLeast(std::uint64_t epoch);

  long long live_size() const;
  bool dirty() const;
  std::uint64_t delta_merges() const;
  std::uint64_t compactions() const;

 private:
  struct Entry {
    AttrTuple tuple;
    double expected_score = 0.0;
    internal::SortedPdf sorted_pdf;  // deterministic function of the pdf
    bool alive = true;
  };
  // One support point of the q(v) universe with its owning entry, so
  // tombstoned mass can be filtered out of the base value run.
  struct ValueItem {
    double value = 0.0;
    double prob = 0.0;
    std::size_t owner = 0;

    friend bool operator<(const ValueItem& a, const ValueItem& b) {
      if (a.value != b.value) return a.value < b.value;
      if (a.prob != b.prob) return a.prob < b.prob;
      return a.owner < b.owner;
    }
  };

  bool InsertLocked(const AttrTuple& tuple, std::string* error);
  bool DeleteLocked(int id, std::string* error);
  void CompactLocked();
  void PublishLocked();

  const MutableRelationOptions options_;

  mutable std::mutex writer_mu_;
  std::vector<Entry> entries_;
  std::unordered_map<int, std::size_t> live_by_id_;
  std::size_t live_count_ = 0;
  std::size_t delta_start_ = 0;
  // Entry indices sorted (expected score desc, index asc).
  std::vector<std::size_t> base_escore_run_;
  // (value, mass, owner) ascending — the consolidated prefix's slice of
  // the q(v) universe before collapsing.
  std::vector<ValueItem> base_value_run_;
  bool dirty_ = true;
  std::uint64_t delta_merges_ = 0;
  std::uint64_t compactions_ = 0;

  mutable std::mutex snapshot_mu_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const PreparedAttrRelation> snapshot_;
};

}  // namespace urank

#endif  // URANK_CORE_ENGINE_MUTABLE_RELATION_H_
