#include "core/engine/prepared_builder.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "core/internal/value_universe.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"

namespace urank {
namespace {

// K-way merge of per-block runs under `better` — a strict total order over
// global indices (both orders below tie-break on the unique index, so no
// two elements compare equal). The merged sequence is therefore the unique
// sorted sequence: identical to std::sort over the concatenation, which is
// what makes blocked preparation bit-identical to the eager path.
template <typename Better>
std::vector<int> MergeRuns(const std::vector<std::vector<int>>& runs,
                           size_t total, const Better& better) {
  struct Cursor {
    size_t run = 0;
    size_t pos = 0;
  };
  auto worse = [&](const Cursor& a, const Cursor& b) {
    return better(runs[b.run][b.pos], runs[a.run][a.pos]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(worse)> heads(
      worse);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heads.push(Cursor{r, 0});
  }
  std::vector<int> merged;
  merged.reserve(total);
  while (!heads.empty()) {
    Cursor c = heads.top();
    heads.pop();
    merged.push_back(runs[c.run][c.pos]);
    if (++c.pos < runs[c.run].size()) heads.push(c);
  }
  return merged;
}

}  // namespace

void PreparedTupleRelationBuilder::AddBlock(
    std::vector<TLTuple> tuples, const std::vector<int>& rule_keys) {
  URANK_CHECK_MSG(!sealed_, "AddBlock called on a sealed builder");
  URANK_CHECK_MSG(rule_keys.empty() || rule_keys.size() == tuples.size(),
                  "rule_keys must be empty or name one rule per tuple");
  const int base = static_cast<int>(count_);
  std::vector<int> run(tuples.size());
  std::iota(run.begin(), run.end(), base);
  std::sort(run.begin(), run.end(), [&](int a, int b) {
    const double sa = tuples[static_cast<size_t>(a - base)].score;
    const double sb = tuples[static_cast<size_t>(b - base)].score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  count_ += static_cast<long long>(tuples.size());
  blocks_.push_back(std::move(tuples));
  block_rule_keys_.push_back(rule_keys);
  runs_.push_back(std::move(run));
}

std::shared_ptr<const PreparedTupleRelation>
PreparedTupleRelationBuilder::Seal() {
  URANK_CHECK_MSG(!sealed_, "Seal called twice");
  sealed_ = true;
  const size_t n = static_cast<size_t>(count_);

  // Explicit rules, numbered by first appearance of their key in input
  // order with members in input order — the convention an eager caller
  // building a rules vector in one pass uses. Singletons (negative keys)
  // are supplied by the TupleRelation constructor, exactly as for an
  // eager caller who omits them.
  std::vector<std::vector<int>> rules;
  {
    std::unordered_map<int, size_t> rule_of_key;
    size_t i = 0;
    for (size_t b = 0; b < blocks_.size(); ++b) {
      const std::vector<int>& keys = block_rule_keys_[b];
      for (size_t j = 0; j < blocks_[b].size(); ++j, ++i) {
        if (keys.empty()) continue;
        const int key = keys[j];
        if (key < 0) continue;
        const auto [it, inserted] = rule_of_key.try_emplace(key, rules.size());
        if (inserted) rules.emplace_back();
        rules[it->second].push_back(static_cast<int>(i));
      }
    }
    block_rule_keys_ = {};
  }

  // Consolidate the staged blocks into the final tuple vector exactly
  // once, freeing each block as it moves: peak = final vector + one
  // block, never two full copies of the relation.
  std::vector<TLTuple> tuples;
  tuples.reserve(n);
  for (std::vector<TLTuple>& block : blocks_) {
    tuples.insert(tuples.end(), std::make_move_iterator(block.begin()),
                  std::make_move_iterator(block.end()));
    std::vector<TLTuple>().swap(block);
  }
  blocks_ = {};

  TuplePreparedSeed seed;
  seed.rank_order = MergeRuns(runs_, n, [&](int a, int b) {
    const double sa = tuples[static_cast<size_t>(a)].score;
    const double sb = tuples[static_cast<size_t>(b)].score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  runs_.clear();
  runs_.shrink_to_fit();
  // One plain sequential pass over the merged order: the exact
  // left-to-right additions the eager constructor performs. Stitching
  // per-block partial sums by offset would reassociate these additions
  // and break bit identity — the merge is the only "external" step.
  seed.rank_probs.resize(n);
  seed.prefix_prob.assign(n + 1, 0.0);
  for (size_t j = 0; j < n; ++j) {
    const double p = tuples[static_cast<size_t>(seed.rank_order[j])].prob;
    seed.rank_probs[j] = p;
    seed.prefix_prob[j + 1] = seed.prefix_prob[j] + p;
  }

  TupleRelation rel(std::move(tuples), std::move(rules));
  return std::make_shared<const PreparedTupleRelation>(std::move(rel),
                                                       std::move(seed));
}

void PreparedAttrRelationBuilder::AddBlock(std::vector<AttrTuple> tuples) {
  URANK_CHECK_MSG(!sealed_, "AddBlock called on a sealed builder");
  const int base = static_cast<int>(tuples_.size());
  std::vector<int> run(tuples.size());
  std::iota(run.begin(), run.end(), base);

  size_t entries = 0;
  for (const AttrTuple& t : tuples) entries += t.pdf.size();
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(entries);

  tuples_.reserve(tuples_.size() + tuples.size());
  expected_scores_.reserve(expected_scores_.size() + tuples.size());
  sorted_pdfs_.reserve(sorted_pdfs_.size() + tuples.size());
  std::vector<ScoreValue> scratch;
  for (AttrTuple& t : tuples) {
    expected_scores_.push_back(t.ExpectedScore());
    sorted_pdfs_.emplace_back();
    sorted_pdfs_.back().Build(t, &scratch);
    for (const ScoreValue& sv : t.pdf) pairs.emplace_back(sv.value, sv.prob);
    tuples_.push_back(std::move(t));
  }

  std::sort(run.begin(), run.end(), [&](int a, int b) {
    const double ea = expected_scores_[static_cast<size_t>(a)];
    const double eb = expected_scores_[static_cast<size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
  std::sort(pairs.begin(), pairs.end());
  escore_runs_.push_back(std::move(run));
  value_runs_.push_back(std::move(pairs));
}

std::shared_ptr<const PreparedAttrRelation>
PreparedAttrRelationBuilder::Seal() {
  URANK_CHECK_MSG(!sealed_, "Seal called twice");
  sealed_ = true;
  const size_t n = tuples_.size();

  AttrPreparedSeed seed;
  seed.escore_order = MergeRuns(escore_runs_, n, [&](int a, int b) {
    const double ea = expected_scores_[static_cast<size_t>(a)];
    const double eb = expected_scores_[static_cast<size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
  escore_runs_.clear();
  escore_runs_.shrink_to_fit();

  // Merge the per-block sorted (value, mass) runs and collapse duplicates
  // on the fly — the same ascending (value, mass) sequence, and therefore
  // the same accumulation order per distinct value, as BuildValueUniverse
  // sorting all pairs at once. Pairs with equal value merge smallest mass
  // first in both paths, so the mass sums are bit-identical.
  {
    internal::ValueUniverse& u = seed.universe;
    struct Cursor {
      size_t run = 0;
      size_t pos = 0;
    };
    auto worse = [&](const Cursor& a, const Cursor& b) {
      return value_runs_[b.run][b.pos] < value_runs_[a.run][a.pos];
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(worse)> heads(
        worse);
    for (size_t r = 0; r < value_runs_.size(); ++r) {
      if (!value_runs_[r].empty()) heads.push(Cursor{r, 0});
    }
    while (!heads.empty()) {
      Cursor c = heads.top();
      heads.pop();
      const auto& [v, p] = value_runs_[c.run][c.pos];
      if (!u.values.empty() && u.values.back() == v) {
        u.mass.back() += p;
      } else {
        u.values.push_back(v);
        u.mass.push_back(p);
      }
      if (++c.pos < value_runs_[c.run].size()) heads.push(c);
    }
    u.suffix.resize(u.values.size() + 1);
    vk::Active().suffix_sum(u.mass.data(), u.suffix.data(),
                            u.values.size());
  }
  value_runs_.clear();
  value_runs_.shrink_to_fit();

  seed.expected_scores = std::move(expected_scores_);
  seed.sorted_pdfs = std::move(sorted_pdfs_);
  expected_scores_ = {};
  sorted_pdfs_ = {};

  AttrRelation rel(std::move(tuples_));
  tuples_ = {};
  return std::make_shared<const PreparedAttrRelation>(std::move(rel),
                                                      std::move(seed));
}

}  // namespace urank
