// Prepared relations: the shared per-relation state every ranking
// semantics starts from, computed once and reused across queries.
//
// The paper's algorithms (A-ERank/T-ERank, the quantile DPs, the top-k
// probability semantics) all begin with the same preprocessing — a
// score-sorted permutation, prefix sums of existence probabilities, the
// q(v) = Pr[score > v] suffix masses, the exclusion-rule index — yet the
// one-shot entry points rebuild it per call. A PreparedRelation owns that
// state plus a thread-safe memo cache of the per-tuple statistic vectors
// (expected ranks, quantile ranks, top-k probabilities, ...) the
// individual semantics are thin selections over, so a second query against
// the same relation — even with a different k — is served from the cache.
//
// Thread-safety: after construction a prepared relation is logically
// immutable. Statistic lookups are internally synchronized (one
// computation per key; concurrent requests for the same key block on the
// first caller's result), so any number of threads may query one prepared
// relation concurrently. This is the property QueryEngine::RunBatch is
// built on.
//
// Equivalence: every cached statistic is produced by exactly the same code
// path, in the same arithmetic order, as the one-shot free functions, so
// prepared results are bit-identical to facade results — not merely close.

#ifndef URANK_CORE_ENGINE_PREPARED_RELATION_H_
#define URANK_CORE_ENGINE_PREPARED_RELATION_H_

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/internal/shard_plan.h"
#include "core/internal/sorted_pdf.h"
#include "core/internal/value_universe.h"
#include "core/rank_distribution_tuple.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

// Identifies one memoized per-tuple statistic vector. Parameters that do
// not apply to a kind (e.g. `k` for expected ranks, `phi` for anything but
// quantiles) are left at their zero defaults so unrelated queries share an
// entry.
struct StatKey {
  enum class Kind {
    kExpectedRank,     // TupleExpectedRanks / AttrExpectedRanks (k-free)
    kQuantileRank,     // quantile ranks at `phi` (k-free)
    kTopKProbability,  // Pr[in top-k] at `k`
    kUKRanksWinners,   // U-kRanks winner ids per rank, at `k`
    kExpectedScore,    // expected scores (parameter-free)
  };

  Kind kind = Kind::kExpectedRank;
  int k = 0;
  double phi = 0.0;
  TiePolicy ties = TiePolicy::kBreakByIndex;

  friend bool operator<(const StatKey& a, const StatKey& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.k != b.k) return a.k < b.k;
    if (a.phi != b.phi) return a.phi < b.phi;
    return a.ties < b.ties;
  }
};

namespace engine_internal {

// Thread-safe single-flight memo table. The first caller of a key runs the
// computation outside the lock; concurrent callers of the same key wait on
// a shared future instead of recomputing.
template <typename Key, typename Value>
class MemoTable {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  ValuePtr GetOrCompute(const Key& key,
                        const std::function<Value()>& compute) const {
    std::promise<ValuePtr> promise;
    std::shared_future<ValuePtr> future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = entries_.try_emplace(key);
      if (inserted) {
        it->second = promise.get_future().share();
        owner = true;
      }
      future = it->second;
    }
    if (owner) {
      misses_.fetch_add(1, std::memory_order_acq_rel);
      promise.set_value(std::make_shared<const Value>(compute()));
    } else {
      hits_.fetch_add(1, std::memory_order_acq_rel);
    }
    return future.get();
  }

  // True once the key has been requested (its value may still be in
  // flight). Used to report cache reuse in query statistics.
  bool Contains(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(key) > 0;
  }

  long long hits() const { return hits_.load(std::memory_order_acquire); }
  long long misses() const {
    return misses_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mu_;
  mutable std::map<Key, std::shared_future<ValuePtr>> entries_;
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> misses_{0};
};

}  // namespace engine_internal

// Precomputed preparation state handed over by the blocked builders
// (core/engine/prepared_builder.h): the exact objects the eager
// constructors below would compute from scratch, assembled incrementally
// from score-sorted blocks instead. The seed constructors adopt them
// without recomputing; every field must hold the same values (bit for
// bit) the eager path would produce — the builders guarantee this by
// running the same arithmetic in the same order, merely reorganized into
// per-block runs merged at seal time.
struct AttrPreparedSeed {
  std::vector<double> expected_scores;          // E[X_i] by position
  std::vector<int> escore_order;                // (E desc, index asc)
  internal::ValueUniverse universe;             // q(v) suffix masses
  std::vector<internal::SortedPdf> sorted_pdfs;  // per-tuple sorted pdfs
};

struct TuplePreparedSeed {
  std::vector<int> rank_order;      // (score desc, index asc)
  std::vector<double> prefix_prob;  // size N+1, plain sequential sums
  std::vector<double> rank_probs;   // prob by sweep position, size N
};

// Shared state for an attribute-level relation. Owns a copy of the
// relation; eagerly builds the expected-score order, the sorted value
// universe (A-ERank's q(v) suffix masses), and the id -> position index.
// Non-copyable: hand out shared_ptr<const PreparedAttrRelation> instead.
class PreparedAttrRelation {
 public:
  explicit PreparedAttrRelation(AttrRelation rel);

  // Adopts preparation state assembled by PreparedAttrRelationBuilder.
  PreparedAttrRelation(AttrRelation rel, AttrPreparedSeed seed);

  PreparedAttrRelation(const PreparedAttrRelation&) = delete;
  PreparedAttrRelation& operator=(const PreparedAttrRelation&) = delete;

  const AttrRelation& relation() const { return rel_; }
  int size() const { return rel_.size(); }
  long long NumWorlds() const { return rel_.NumWorlds(); }

  // Tuple ids by position, and positions sorted by expected score
  // descending (ties by index) — the stream order of the prune variants.
  const std::vector<int>& ids() const { return ids_; }
  const std::vector<int>& escore_order() const { return escore_order_; }

  // expected_scores()[i] = E[X_i].
  const std::vector<double>& expected_scores() const {
    return expected_scores_;
  }

  // The sorted value universe with q(v) suffix masses (eq. 4).
  const internal::ValueUniverse& universe() const { return universe_; }

  // Per-tuple sorted pdfs with suffix sums, built once at preparation time
  // and shared by every attribute-level DP over this relation.
  const std::vector<internal::SortedPdf>& sorted_pdfs() const {
    return sorted_pdfs_;
  }

  // Score-range shard plan for the shard-parallel A-ERank sweep: contiguous
  // tuple ranges (balanced by pdf-entry count) with per-entry tie-mass
  // snapshots, first-touched on each shard's home node at preparation time.
  // The grid is a pure function of the relation — never of the topology.
  const internal::AttrShardPlan& shard_plan() const { return shard_plan_; }

  // Position of the tuple with external id `id`, or -1 if absent. O(1)
  // expected; ids may be arbitrary ints (sparse, negative, huge).
  int PositionOfId(int id) const;

  // The full N x N rank-distribution matrix (AttrRankDistributions),
  // computed on first use per tie policy and shared by every matrix-backed
  // semantics (quantile ranks, U-kRanks, top-k probabilities). The
  // overload taking ParallelismOptions computes a cache miss with that
  // much intra-query parallelism (results are bit-identical regardless)
  // and Merge()s what the kernel did into `report` when non-null; a cache
  // hit leaves `report` untouched.
  std::shared_ptr<const std::vector<std::vector<double>>> RankDistributions(
      TiePolicy ties) const;
  std::shared_ptr<const std::vector<std::vector<double>>> RankDistributions(
      TiePolicy ties, const ParallelismOptions& par,
      KernelReport* report) const;

  // Memoized per-tuple statistic vector: returns the cached value for
  // `key`, running `compute` (once, under single-flight discipline) on the
  // first request.
  std::shared_ptr<const std::vector<double>> CachedStat(
      const StatKey& key,
      const std::function<std::vector<double>()>& compute) const;

  // True when the statistic for `key` has already been requested.
  bool HasCachedStat(const StatKey& key) const;

  long long cache_hits() const {
    return stats_.hits() + dists_.hits();
  }
  long long cache_misses() const {
    return stats_.misses() + dists_.misses();
  }

 private:
  AttrRelation rel_;
  std::vector<int> ids_;
  std::vector<double> expected_scores_;
  std::vector<int> escore_order_;
  internal::ValueUniverse universe_;
  std::vector<internal::SortedPdf> sorted_pdfs_;
  internal::AttrShardPlan shard_plan_;
  std::unordered_map<int, int> position_of_id_;
  engine_internal::MemoTable<StatKey, std::vector<double>> stats_;
  // Keyed by the tie policy.
  engine_internal::MemoTable<int, std::vector<std::vector<double>>> dists_;
};

// Shared state for a tuple-level relation. Owns a copy of the relation
// (which itself carries the rule-group index and E[|W|]); eagerly builds
// the rank order (score descending, index ascending — the sweep order of
// T-ERank and every positional DP), its prefix probability sums, and the
// id -> position index. Non-copyable.
class PreparedTupleRelation {
 public:
  explicit PreparedTupleRelation(TupleRelation rel);

  // Adopts preparation state assembled by PreparedTupleRelationBuilder.
  PreparedTupleRelation(TupleRelation rel, TuplePreparedSeed seed);

  PreparedTupleRelation(const PreparedTupleRelation&) = delete;
  PreparedTupleRelation& operator=(const PreparedTupleRelation&) = delete;

  const TupleRelation& relation() const { return rel_; }
  int size() const { return rel_.size(); }
  double expected_world_size() const { return rel_.ExpectedWorldSize(); }

  // Tuple ids by position.
  const std::vector<int>& ids() const { return ids_; }

  // Positions sorted by (score desc, index asc): the order in which
  // "already swept" means "ranked above".
  const std::vector<int>& rank_order() const { return rank_order_; }

  // prefix_prob()[j] = sum of existence probabilities of the first j
  // tuples in rank order (size N+1); prefix_prob()[N] = E[|W|].
  const std::vector<double>& prefix_prob() const { return prefix_prob_; }

  // Position of the tuple with external id `id`, or -1 if absent. O(1)
  // expected; ids may be arbitrary ints (sparse, negative, huge).
  int PositionOfId(int id) const;

  // Score-range shard plan for the shard-parallel T-ERank sweep:
  // contiguous run-aligned slices of the rank order with their exact
  // serial entry state, first-touched on each shard's home node at
  // preparation time. The grid is a pure function of the relation.
  const internal::TupleShardPlan& shard_plan() const { return shard_plan_; }

  // Memoized chunk-entry table for the deterministic tuple sweep grid
  // (BuildTupleSweepEntryTable over this relation's rank order), one per
  // tie policy: parallel DP sweeps start each chunk from the precomputed
  // per-rule prefix state instead of replaying it.
  std::shared_ptr<const TupleSweepEntryTable> SweepEntries(
      TiePolicy ties) const;

  // Memoized per-tuple statistic vector (see PreparedAttrRelation).
  std::shared_ptr<const std::vector<double>> CachedStat(
      const StatKey& key,
      const std::function<std::vector<double>()>& compute) const;

  // True when the statistic for `key` has already been requested.
  bool HasCachedStat(const StatKey& key) const;

  long long cache_hits() const { return stats_.hits(); }
  long long cache_misses() const { return stats_.misses(); }

 private:
  TupleRelation rel_;
  std::vector<int> ids_;
  std::vector<int> rank_order_;
  std::vector<double> prefix_prob_;
  internal::TupleShardPlan shard_plan_;
  std::unordered_map<int, int> position_of_id_;
  engine_internal::MemoTable<StatKey, std::vector<double>> stats_;
  // Keyed by the tie policy.
  engine_internal::MemoTable<int, TupleSweepEntryTable> sweep_entries_;
};

}  // namespace urank

#endif  // URANK_CORE_ENGINE_PREPARED_RELATION_H_
