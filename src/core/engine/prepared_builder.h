// Blocked / streaming preparation: build a PreparedRelation from
// score-sorted blocks instead of one monolithic sort-and-scan.
//
// The eager PreparedRelation constructors materialize the whole relation,
// sort N positions in one call, and scan the result — three O(N) peaks
// that all coexist for an N=1M relation. The builders below accept the
// relation in blocks (any sizes, any order): each AddBlock sorts only its
// block into a run and folds the block into the running per-block
// summaries; Seal() performs an external-style k-way merge of the runs
// and hands the stitched state to the PreparedRelation seed constructor.
//
// Identity guarantee: a sealed relation is *bit-identical* to eagerly
// preparing the concatenation of the blocks —
//   * the merged rank/escore order equals the eager std::sort output
//     because the comparator (score desc, index asc) is a total order
//     (indices are unique), so the sorted sequence is unique;
//   * prefix probability sums are computed by one plain sequential pass
//     over the merged order at seal time — the same left-to-right
//     additions the eager constructor performs (NOT per-block partial
//     sums stitched by offset, which would reassociate the floating-point
//     additions and break bit identity);
//   * the value universe merges per-block sorted (value, mass) runs and
//     then collapses duplicates with the exact accumulation
//     BuildValueUniverse performs on its globally sorted array;
//   * shard plans come from the same Build*ShardPlan planners (pure
//     functions of relation + order) — block boundaries never leak into
//     shard boundaries, which the PR 3/8 determinism contract requires to
//     be functions of the data only.
//
// The builders are single-threaded state machines: AddBlock/Seal must not
// race. The sealed PreparedRelation has the usual thread-safety.

#ifndef URANK_CORE_ENGINE_PREPARED_BUILDER_H_
#define URANK_CORE_ENGINE_PREPARED_BUILDER_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/engine/prepared_relation.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// Streaming preparation of a tuple-level relation.
//
// Exclusion rules may span blocks: `rule_keys[i]` is an arbitrary
// caller-chosen key naming the exclusion rule of `tuples[i]`; tuples with
// the same non-negative key (within or across blocks) form one rule, and
// a negative key means "independent" (singleton rule, supplied by the
// TupleRelation constructor). Rules are numbered by first appearance in
// input order — the same convention an eager caller building an explicit
// rules vector in input order uses. An empty rule_keys vector marks the
// whole block independent.
class PreparedTupleRelationBuilder {
 public:
  PreparedTupleRelationBuilder() = default;
  PreparedTupleRelationBuilder(const PreparedTupleRelationBuilder&) = delete;
  PreparedTupleRelationBuilder& operator=(const PreparedTupleRelationBuilder&) =
      delete;

  // Appends one block. The block need not be sorted; it is sorted into a
  // (score desc, global index asc) run immediately, so the seal-time merge
  // touches each position O(log #blocks) times instead of re-sorting N.
  void AddBlock(std::vector<TLTuple> tuples,
                const std::vector<int>& rule_keys = {});

  // Number of tuples added so far.
  long long size() const { return count_; }

  // Merges the runs, assembles the relation (aborts on a malformed model,
  // like the TupleRelation constructor) and returns the prepared state.
  // The builder is consumed: further AddBlock/Seal calls abort.
  std::shared_ptr<const PreparedTupleRelation> Seal();

 private:
  bool sealed_ = false;
  long long count_ = 0;
  // Blocks stay staged exactly as handed in (moved, never re-appended to
  // a growing copy) and consolidate once at Seal, each block freed as it
  // moves — the builder's peak holds ~one relation plus one block rather
  // than the caller's vector and a second reallocating copy.
  std::vector<std::vector<TLTuple>> blocks_;
  std::vector<std::vector<int>> block_rule_keys_;  // empty => all singleton
  std::vector<std::vector<int>> runs_;  // per-block sorted global indices
};

// Streaming preparation of an attribute-level relation. Blocks carry the
// tuples only; pdf summaries (sorted pdfs, expected scores, per-block
// value runs for the q(v) universe) are folded in per block.
class PreparedAttrRelationBuilder {
 public:
  PreparedAttrRelationBuilder() = default;
  PreparedAttrRelationBuilder(const PreparedAttrRelationBuilder&) = delete;
  PreparedAttrRelationBuilder& operator=(const PreparedAttrRelationBuilder&) =
      delete;

  void AddBlock(std::vector<AttrTuple> tuples);

  long long size() const { return static_cast<long long>(tuples_.size()); }

  std::shared_ptr<const PreparedAttrRelation> Seal();

 private:
  bool sealed_ = false;
  std::vector<AttrTuple> tuples_;
  std::vector<double> expected_scores_;  // aligned with tuples_
  std::vector<internal::SortedPdf> sorted_pdfs_;
  std::vector<std::vector<int>> escore_runs_;  // per-block sorted indices
  // Per-block (value, mass) pairs sorted ascending — the block's slice of
  // the global value universe before collapsing.
  std::vector<std::vector<std::pair<double, double>>> value_runs_;
};

}  // namespace urank

#endif  // URANK_CORE_ENGINE_PREPARED_BUILDER_H_
