#include "core/engine/mutable_relation.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/metrics.h"

namespace urank {
namespace {

// Writer-side metrics (docs/OBSERVABILITY.md). The epoch gauge is a
// process-wide high-water mark across all stores.
struct MutationMetrics {
  metrics::Counter& mutations;
  metrics::Counter& publishes;
  metrics::Counter& delta_merges;
  metrics::Counter& compactions;
  metrics::Gauge& epoch;

  static const MutationMetrics& Get() {
    metrics::Registry& r = metrics::Registry::Global();
    static const MutationMetrics m{
        r.counter("urank_engine_mutations_total"),
        r.counter("urank_engine_epoch_publish_total"),
        r.counter("urank_engine_delta_merge_total"),
        r.counter("urank_engine_compaction_total"),
        r.gauge("urank_engine_epoch_count")};
    return m;
  }
};

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Mirrors the model validators' round-off allowance (the same constant
// kProbSumTolerance both model .cc files define), so a mutation the store
// accepts can never be rejected by the TupleRelation constructor at
// publish time.
constexpr double kTolerance = internal::kContractTolerance;

}  // namespace

// ---------------------------------------------------------------------------
// MutableTupleRelation

MutableTupleRelation::MutableTupleRelation(MutableRelationOptions options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PublishLocked();
}

MutableTupleRelation::MutableTupleRelation(const TupleRelation& rel,
                                           MutableRelationOptions options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  entries_.reserve(static_cast<std::size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) {
    // Keying by the rule index preserves the relation's rule structure
    // (implicit singletons included — every tuple has a rule index).
    const std::size_t idx = entries_.size();
    const long long key = rel.rule_of(i);
    entries_.push_back(Entry{rel.tuple(i), key, true});
    live_by_id_[rel.tuple(i).id] = idx;
    rule_members_[key].push_back(idx);
  }
  live_count_ = entries_.size();
  PublishLocked();
}

double MutableTupleRelation::LiveRuleMass(long long rule_key) const {
  const auto it = rule_members_.find(rule_key);
  if (it == rule_members_.end()) return 0.0;
  // Left-to-right over live members in arrival order: the exact additions
  // TupleRelation::Validate performs over the published rule vector.
  double mass = 0.0;
  for (std::size_t idx : it->second) {
    if (entries_[idx].alive) mass += entries_[idx].tuple.prob;
  }
  return mass;
}

bool MutableTupleRelation::InsertLocked(const TLTuple& tuple,
                                        long long rule_key,
                                        std::string* error) {
  if (live_by_id_.count(tuple.id) > 0) {
    SetError(error, "duplicate tuple id " + std::to_string(tuple.id));
    return false;
  }
  if (!(tuple.prob > 0.0) || tuple.prob > 1.0 + kTolerance) {
    SetError(error, "tuple " + std::to_string(tuple.id) +
                        " has a probability outside (0,1]");
    return false;
  }
  if (!std::isfinite(tuple.score)) {
    SetError(error, "tuple " + std::to_string(tuple.id) +
                        " has a non-finite score");
    return false;
  }
  if (rule_key >= 0) {
    const double mass = LiveRuleMass(rule_key) + tuple.prob;
    if (mass > 1.0 + kTolerance) {
      SetError(error, "rule " + std::to_string(rule_key) +
                          " probabilities would sum to " +
                          std::to_string(mass) + " > 1");
      return false;
    }
  }
  const std::size_t idx = entries_.size();
  entries_.push_back(Entry{tuple, rule_key, true});
  live_by_id_[tuple.id] = idx;
  if (rule_key >= 0) rule_members_[rule_key].push_back(idx);
  ++live_count_;
  dirty_ = true;
  return true;
}

bool MutableTupleRelation::DeleteLocked(int id, std::string* error) {
  const auto it = live_by_id_.find(id);
  if (it == live_by_id_.end()) {
    SetError(error, "no live tuple with id " + std::to_string(id));
    return false;
  }
  entries_[it->second].alive = false;
  live_by_id_.erase(it);
  --live_count_;
  dirty_ = true;
  return true;
}

bool MutableTupleRelation::Insert(const TLTuple& tuple, long long rule_key,
                                  std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!InsertLocked(tuple, rule_key, error)) return false;
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableTupleRelation::Delete(int id, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!DeleteLocked(id, error)) return false;
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableTupleRelation::Update(const TLTuple& tuple, long long rule_key,
                                  std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = live_by_id_.find(tuple.id);
  if (it == live_by_id_.end()) {
    SetError(error, "no live tuple with id " + std::to_string(tuple.id));
    return false;
  }
  // Tombstone the old version first so the rule-mass gate sees the rule
  // without it, then re-insert at the tail; restore on failure.
  const std::size_t old_idx = it->second;
  entries_[old_idx].alive = false;
  live_by_id_.erase(it);
  --live_count_;
  if (!InsertLocked(tuple, rule_key, error)) {
    entries_[old_idx].alive = true;
    live_by_id_[tuple.id] = old_idx;
    ++live_count_;
    return false;
  }
  dirty_ = true;
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableTupleRelation::Apply(const std::vector<TupleMutation>& ops,
                                 std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Undo journal: entries appended by the batch are truncated; entries
  // that were alive before the batch and died during it are revived.
  const std::size_t old_size = entries_.size();
  const std::size_t old_live = live_count_;
  const bool old_dirty = dirty_;
  std::vector<std::size_t> killed;  // indices < old_size flipped dead

  auto kill_tracked = [&](int id, std::string* err) {
    const auto it = live_by_id_.find(id);
    if (it == live_by_id_.end()) {
      SetError(err, "no live tuple with id " + std::to_string(id));
      return false;
    }
    if (it->second < old_size) killed.push_back(it->second);
    entries_[it->second].alive = false;
    live_by_id_.erase(it);
    --live_count_;
    return true;
  };

  std::string op_error;
  bool ok = true;
  std::size_t failed_at = 0;
  for (std::size_t i = 0; i < ops.size() && ok; ++i) {
    const TupleMutation& op = ops[i];
    failed_at = i;
    switch (op.op) {
      case TupleMutation::Op::kInsert:
        ok = InsertLocked(op.tuple, op.rule_key, &op_error);
        break;
      case TupleMutation::Op::kDelete:
        ok = kill_tracked(op.id, &op_error);
        break;
      case TupleMutation::Op::kUpdate:
        ok = kill_tracked(op.tuple.id, &op_error) &&
             InsertLocked(op.tuple, op.rule_key, &op_error);
        break;
    }
  }
  if (ok) {
    if (!ops.empty()) dirty_ = true;
    MutationMetrics::Get().mutations.Increment(
        static_cast<long long>(ops.size()));
    return true;
  }

  // Roll back: drop batch-appended entries and their bookkeeping, then
  // revive the pre-batch entries the batch tombstoned.
  for (std::size_t idx = old_size; idx < entries_.size(); ++idx) {
    live_by_id_.erase(entries_[idx].tuple.id);
    if (entries_[idx].rule_key >= 0) {
      std::vector<std::size_t>& members = rule_members_[entries_[idx].rule_key];
      while (!members.empty() && members.back() >= old_size) {
        members.pop_back();
      }
    }
  }
  entries_.resize(old_size);
  for (std::size_t idx : killed) {
    entries_[idx].alive = true;
    live_by_id_[entries_[idx].tuple.id] = idx;
  }
  live_count_ = old_live;
  dirty_ = old_dirty;
  SetError(error, "op " + std::to_string(failed_at) + ": " + op_error);
  return false;
}

void MutableTupleRelation::CompactLocked() {
  // Arrival-order-preserving removal of tombstones. Only called right
  // after a consolidation, so base_run_ holds live entries only and the
  // delta is empty.
  std::vector<std::size_t> remap(entries_.size(),
                                 static_cast<std::size_t>(-1));
  std::vector<Entry> live;
  live.reserve(live_count_);
  for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
    if (!entries_[idx].alive) continue;
    remap[idx] = live.size();
    live.push_back(std::move(entries_[idx]));
  }
  entries_ = std::move(live);
  for (std::size_t& idx : base_run_) idx = remap[idx];
  for (auto& [id, idx] : live_by_id_) idx = remap[idx];
  for (auto it = rule_members_.begin(); it != rule_members_.end();) {
    std::vector<std::size_t> kept;
    for (std::size_t idx : it->second) {
      if (remap[idx] != static_cast<std::size_t>(-1)) {
        kept.push_back(remap[idx]);
      }
    }
    if (kept.empty()) {
      it = rule_members_.erase(it);
    } else {
      it->second = std::move(kept);
      ++it;
    }
  }
  delta_start_ = entries_.size();
  ++compactions_;
  MutationMetrics::Get().compactions.Increment();
}

void MutableTupleRelation::PublishLocked() {
  // (score desc, entry index asc): a strict total order (indices unique),
  // so merged runs equal the eager std::sort output over the live set.
  auto better = [this](std::size_t a, std::size_t b) {
    const double sa = entries_[a].tuple.score;
    const double sb = entries_[b].tuple.score;
    if (sa != sb) return sa > sb;
    return a < b;
  };

  std::vector<std::size_t> delta_run;
  delta_run.reserve(entries_.size() - delta_start_);
  for (std::size_t idx = delta_start_; idx < entries_.size(); ++idx) {
    if (entries_[idx].alive) delta_run.push_back(idx);
  }
  std::sort(delta_run.begin(), delta_run.end(), better);

  // 2-way merge, filtering entries tombstoned since consolidation.
  std::vector<std::size_t> merged;
  merged.reserve(live_count_);
  std::size_t bi = 0;
  std::size_t di = 0;
  while (bi < base_run_.size() && !entries_[base_run_[bi]].alive) ++bi;
  while (bi < base_run_.size() || di < delta_run.size()) {
    if (di == delta_run.size() ||
        (bi < base_run_.size() && better(base_run_[bi], delta_run[di]))) {
      merged.push_back(base_run_[bi]);
      ++bi;
      while (bi < base_run_.size() && !entries_[base_run_[bi]].alive) ++bi;
    } else {
      merged.push_back(delta_run[di]);
      ++di;
    }
  }

  const bool consolidate =
      delta_run.size() >= options_.delta_merge_threshold;
  if (consolidate) {
    base_run_ = merged;
    delta_start_ = entries_.size();
    ++delta_merges_;
    MutationMetrics::Get().delta_merges.Increment();
    const std::size_t dead = entries_.size() - live_count_;
    if (dead > live_count_ && dead >= options_.compact_min_dead) {
      CompactLocked();
      // merged indexes pre-compaction entries; relabeling below uses the
      // pre-compaction arrival order, so rebuild merged from the (already
      // relabeled) base run instead.
      merged.assign(base_run_.begin(), base_run_.end());
    }
  }

  // Canonical logical contents: live entries in arrival order; rules
  // grouped by key, numbered by first live appearance, members in
  // arrival order (the prepared_builder convention).
  std::vector<std::size_t> pos_of_entry(entries_.size(),
                                        static_cast<std::size_t>(-1));
  std::vector<TLTuple> tuples;
  std::vector<std::vector<int>> rules;
  tuples.reserve(live_count_);
  {
    std::unordered_map<long long, std::size_t> rule_of_key;
    for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
      const Entry& e = entries_[idx];
      if (!e.alive) continue;
      pos_of_entry[idx] = tuples.size();
      tuples.push_back(e.tuple);
      if (e.rule_key >= 0) {
        const auto [it, inserted] =
            rule_of_key.try_emplace(e.rule_key, rules.size());
        if (inserted) rules.emplace_back();
        rules[it->second].push_back(static_cast<int>(pos_of_entry[idx]));
      }
    }
  }

  TuplePreparedSeed seed;
  seed.rank_order.reserve(merged.size());
  for (std::size_t idx : merged) {
    seed.rank_order.push_back(static_cast<int>(pos_of_entry[idx]));
  }
  // One plain sequential pass — the exact left-to-right additions the
  // eager constructor performs over its sorted order.
  const std::size_t n = tuples.size();
  seed.rank_probs.resize(n);
  seed.prefix_prob.assign(n + 1, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double p =
        tuples[static_cast<std::size_t>(seed.rank_order[j])].prob;
    seed.rank_probs[j] = p;
    seed.prefix_prob[j + 1] = seed.prefix_prob[j] + p;
  }

  TupleRelation rel(std::move(tuples), std::move(rules));
  auto prepared = std::make_shared<const PreparedTupleRelation>(
      std::move(rel), std::move(seed));

  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    ++epoch_;
    snapshot_ = std::move(prepared);
    MutationMetrics::Get().epoch.SetMax(static_cast<double>(epoch_));
  }
  dirty_ = false;
  MutationMetrics::Get().publishes.Increment();
}

TupleEpochSnapshot MutableTupleRelation::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (dirty_) PublishLocked();
  return Snapshot();
}

TupleEpochSnapshot MutableTupleRelation::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return {epoch_, snapshot_};
}

std::uint64_t MutableTupleRelation::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return epoch_;
}

void MutableTupleRelation::EnsureEpochAtLeast(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (epoch_ < epoch) {
    epoch_ = epoch;
    MutationMetrics::Get().epoch.SetMax(static_cast<double>(epoch_));
  }
}

long long MutableTupleRelation::live_size() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return static_cast<long long>(live_count_);
}

bool MutableTupleRelation::dirty() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return dirty_;
}

std::uint64_t MutableTupleRelation::delta_merges() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return delta_merges_;
}

std::uint64_t MutableTupleRelation::compactions() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return compactions_;
}

// ---------------------------------------------------------------------------
// MutableAttrRelation

MutableAttrRelation::MutableAttrRelation(MutableRelationOptions options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  PublishLocked();
}

MutableAttrRelation::MutableAttrRelation(const AttrRelation& rel,
                                         MutableRelationOptions options)
    : options_(options) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::string error;
  for (int i = 0; i < rel.size(); ++i) {
    const bool ok = InsertLocked(rel.tuple(i), &error);
    URANK_CHECK_MSG(ok, error.c_str());
  }
  PublishLocked();
}

bool MutableAttrRelation::InsertLocked(const AttrTuple& tuple,
                                       std::string* error) {
  if (live_by_id_.count(tuple.id) > 0) {
    SetError(error, "duplicate tuple id " + std::to_string(tuple.id));
    return false;
  }
  // Per-tuple contract (pdf shape, probability mass): exactly the model
  // validator's rules, run on a one-element relation.
  std::string model_error;
  if (!AttrRelation::Validate({tuple}, &model_error)) {
    SetError(error, std::move(model_error));
    return false;
  }
  Entry entry;
  entry.expected_score = tuple.ExpectedScore();
  std::vector<ScoreValue> scratch;
  entry.sorted_pdf.Build(tuple, &scratch);
  entry.tuple = tuple;
  const std::size_t idx = entries_.size();
  entries_.push_back(std::move(entry));
  live_by_id_[tuple.id] = idx;
  ++live_count_;
  dirty_ = true;
  return true;
}

bool MutableAttrRelation::DeleteLocked(int id, std::string* error) {
  const auto it = live_by_id_.find(id);
  if (it == live_by_id_.end()) {
    SetError(error, "no live tuple with id " + std::to_string(id));
    return false;
  }
  entries_[it->second].alive = false;
  live_by_id_.erase(it);
  --live_count_;
  dirty_ = true;
  return true;
}

bool MutableAttrRelation::Insert(const AttrTuple& tuple, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!InsertLocked(tuple, error)) return false;
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableAttrRelation::Delete(int id, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!DeleteLocked(id, error)) return false;
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableAttrRelation::Update(const AttrTuple& tuple, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const auto it = live_by_id_.find(tuple.id);
  if (it == live_by_id_.end()) {
    SetError(error, "no live tuple with id " + std::to_string(tuple.id));
    return false;
  }
  const std::size_t old_idx = it->second;
  entries_[old_idx].alive = false;
  live_by_id_.erase(it);
  --live_count_;
  if (!InsertLocked(tuple, error)) {
    entries_[old_idx].alive = true;
    live_by_id_[tuple.id] = old_idx;
    ++live_count_;
    return false;
  }
  MutationMetrics::Get().mutations.Increment();
  return true;
}

bool MutableAttrRelation::Apply(const std::vector<AttrMutation>& ops,
                                std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::size_t old_size = entries_.size();
  const std::size_t old_live = live_count_;
  const bool old_dirty = dirty_;
  std::vector<std::size_t> killed;

  auto kill_tracked = [&](int id, std::string* err) {
    const auto it = live_by_id_.find(id);
    if (it == live_by_id_.end()) {
      SetError(err, "no live tuple with id " + std::to_string(id));
      return false;
    }
    if (it->second < old_size) killed.push_back(it->second);
    entries_[it->second].alive = false;
    live_by_id_.erase(it);
    --live_count_;
    return true;
  };

  std::string op_error;
  bool ok = true;
  std::size_t failed_at = 0;
  for (std::size_t i = 0; i < ops.size() && ok; ++i) {
    const AttrMutation& op = ops[i];
    failed_at = i;
    switch (op.op) {
      case AttrMutation::Op::kInsert:
        ok = InsertLocked(op.tuple, &op_error);
        break;
      case AttrMutation::Op::kDelete:
        ok = kill_tracked(op.id, &op_error);
        break;
      case AttrMutation::Op::kUpdate:
        ok = kill_tracked(op.tuple.id, &op_error) &&
             InsertLocked(op.tuple, &op_error);
        break;
    }
  }
  if (ok) {
    if (!ops.empty()) dirty_ = true;
    MutationMetrics::Get().mutations.Increment(
        static_cast<long long>(ops.size()));
    return true;
  }

  for (std::size_t idx = old_size; idx < entries_.size(); ++idx) {
    live_by_id_.erase(entries_[idx].tuple.id);
  }
  entries_.resize(old_size);
  for (std::size_t idx : killed) {
    entries_[idx].alive = true;
    live_by_id_[entries_[idx].tuple.id] = idx;
  }
  live_count_ = old_live;
  dirty_ = old_dirty;
  SetError(error, "op " + std::to_string(failed_at) + ": " + op_error);
  return false;
}

void MutableAttrRelation::CompactLocked() {
  std::vector<std::size_t> remap(entries_.size(),
                                 static_cast<std::size_t>(-1));
  std::vector<Entry> live;
  live.reserve(live_count_);
  for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
    if (!entries_[idx].alive) continue;
    remap[idx] = live.size();
    live.push_back(std::move(entries_[idx]));
  }
  entries_ = std::move(live);
  for (std::size_t& idx : base_escore_run_) idx = remap[idx];
  for (ValueItem& item : base_value_run_) item.owner = remap[item.owner];
  for (auto& [id, idx] : live_by_id_) idx = remap[idx];
  delta_start_ = entries_.size();
  ++compactions_;
  MutationMetrics::Get().compactions.Increment();
}

void MutableAttrRelation::PublishLocked() {
  auto better = [this](std::size_t a, std::size_t b) {
    const double ea = entries_[a].expected_score;
    const double eb = entries_[b].expected_score;
    if (ea != eb) return ea > eb;
    return a < b;
  };

  std::vector<std::size_t> delta_run;
  std::vector<ValueItem> delta_values;
  for (std::size_t idx = delta_start_; idx < entries_.size(); ++idx) {
    if (!entries_[idx].alive) continue;
    delta_run.push_back(idx);
    for (const ScoreValue& sv : entries_[idx].tuple.pdf) {
      delta_values.push_back(ValueItem{sv.value, sv.prob, idx});
    }
  }
  std::sort(delta_run.begin(), delta_run.end(), better);
  std::sort(delta_values.begin(), delta_values.end());

  std::vector<std::size_t> merged;
  merged.reserve(live_count_);
  {
    std::size_t bi = 0;
    std::size_t di = 0;
    while (bi < base_escore_run_.size() &&
           !entries_[base_escore_run_[bi]].alive) {
      ++bi;
    }
    while (bi < base_escore_run_.size() || di < delta_run.size()) {
      if (di == delta_run.size() ||
          (bi < base_escore_run_.size() &&
           better(base_escore_run_[bi], delta_run[di]))) {
        merged.push_back(base_escore_run_[bi]);
        ++bi;
        while (bi < base_escore_run_.size() &&
               !entries_[base_escore_run_[bi]].alive) {
          ++bi;
        }
      } else {
        merged.push_back(delta_run[di]);
        ++di;
      }
    }
  }

  // Merge the sorted (value, mass, owner) runs, filtering tombstoned
  // owners. The projected (value, mass) sequence is exactly the
  // BuildValueUniverse std::sort output over the live entries' pairs:
  // equal-value masses appear ascending, and equal (value, mass) items
  // contribute identical additions in any order.
  std::vector<ValueItem> merged_values;
  merged_values.reserve(base_value_run_.size() + delta_values.size());
  {
    std::size_t bi = 0;
    std::size_t di = 0;
    while (bi < base_value_run_.size() &&
           !entries_[base_value_run_[bi].owner].alive) {
      ++bi;
    }
    while (bi < base_value_run_.size() || di < delta_values.size()) {
      if (di == delta_values.size() ||
          (bi < base_value_run_.size() &&
           base_value_run_[bi] < delta_values[di])) {
        merged_values.push_back(base_value_run_[bi]);
        ++bi;
        while (bi < base_value_run_.size() &&
               !entries_[base_value_run_[bi].owner].alive) {
          ++bi;
        }
      } else {
        merged_values.push_back(delta_values[di]);
        ++di;
      }
    }
  }

  const bool consolidate =
      delta_run.size() >= options_.delta_merge_threshold;
  if (consolidate) {
    base_escore_run_ = merged;
    base_value_run_ = merged_values;
    delta_start_ = entries_.size();
    ++delta_merges_;
    MutationMetrics::Get().delta_merges.Increment();
    const std::size_t dead = entries_.size() - live_count_;
    if (dead > live_count_ && dead >= options_.compact_min_dead) {
      CompactLocked();
      merged.assign(base_escore_run_.begin(), base_escore_run_.end());
      merged_values.assign(base_value_run_.begin(), base_value_run_.end());
    }
  }

  std::vector<std::size_t> pos_of_entry(entries_.size(),
                                        static_cast<std::size_t>(-1));
  std::vector<AttrTuple> tuples;
  AttrPreparedSeed seed;
  tuples.reserve(live_count_);
  seed.expected_scores.reserve(live_count_);
  seed.sorted_pdfs.reserve(live_count_);
  for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
    const Entry& e = entries_[idx];
    if (!e.alive) continue;
    pos_of_entry[idx] = tuples.size();
    tuples.push_back(e.tuple);
    seed.expected_scores.push_back(e.expected_score);
    seed.sorted_pdfs.push_back(e.sorted_pdf);
  }
  seed.escore_order.reserve(merged.size());
  for (std::size_t idx : merged) {
    seed.escore_order.push_back(static_cast<int>(pos_of_entry[idx]));
  }
  // Collapse the merged ascending (value, mass) sequence — the exact
  // accumulation BuildValueUniverse performs on its sorted array.
  internal::ValueUniverse& u = seed.universe;
  for (const ValueItem& item : merged_values) {
    if (!u.values.empty() && u.values.back() == item.value) {
      u.mass.back() += item.prob;
    } else {
      u.values.push_back(item.value);
      u.mass.push_back(item.prob);
    }
  }
  u.suffix.resize(u.values.size() + 1);
  vk::Active().suffix_sum(u.mass.data(), u.suffix.data(), u.values.size());

  AttrRelation rel(std::move(tuples));
  auto prepared = std::make_shared<const PreparedAttrRelation>(
      std::move(rel), std::move(seed));

  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    ++epoch_;
    snapshot_ = std::move(prepared);
    MutationMetrics::Get().epoch.SetMax(static_cast<double>(epoch_));
  }
  dirty_ = false;
  MutationMetrics::Get().publishes.Increment();
}

AttrEpochSnapshot MutableAttrRelation::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (dirty_) PublishLocked();
  return Snapshot();
}

AttrEpochSnapshot MutableAttrRelation::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return {epoch_, snapshot_};
}

std::uint64_t MutableAttrRelation::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return epoch_;
}

void MutableAttrRelation::EnsureEpochAtLeast(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (epoch_ < epoch) {
    epoch_ = epoch;
    MutationMetrics::Get().epoch.SetMax(static_cast<double>(epoch_));
  }
}

long long MutableAttrRelation::live_size() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return static_cast<long long>(live_count_);
}

bool MutableAttrRelation::dirty() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return dirty_;
}

std::uint64_t MutableAttrRelation::delta_merges() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return delta_merges_;
}

std::uint64_t MutableAttrRelation::compactions() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return compactions_;
}

}  // namespace urank
