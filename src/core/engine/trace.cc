#include "core/engine/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/check.h"

namespace urank {
namespace trace {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if !defined(URANK_METRICS_DISABLED)

// Synthetic per-thread ids: small, dense, stable for the thread's
// lifetime. Chrome trace viewers group events by (pid, tid), so pool
// workers get their own lanes without touching OS thread ids.
std::uint32_t ThisThreadTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_acq_rel);
  return tid;
}

thread_local std::uint32_t g_depth = 0;

#endif  // !URANK_METRICS_DISABLED

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
}

std::string FormatUs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-3);
  return buf;
}

}  // namespace

struct Recorder::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t session_start_ns = 0;
  std::vector<Event> slots;
};

Recorder::Recorder() : impl_(new Impl) {}

// Leaked global (see ThreadPool::Global): spans on pool workers may fire
// during static teardown.
Recorder::~Recorder() { delete impl_; }

Recorder& Recorder::Global() {
  static Recorder* recorder = new Recorder;
  return *recorder;
}

void Recorder::Start(std::size_t capacity) {
  URANK_CHECK_MSG(capacity > 0, "trace capacity must be > 0");
#if defined(URANK_METRICS_DISABLED)
  (void)capacity;
#else
  URANK_CHECK_MSG(!enabled(), "trace session already active");
  impl_->slots.assign(capacity, Event{});
  impl_->next.store(0, std::memory_order_release);
  impl_->dropped.store(0, std::memory_order_release);
  impl_->session_start_ns = SteadyNowNs();
  impl_->enabled.store(true, std::memory_order_release);
#endif
}

void Recorder::Stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool Recorder::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

void Recorder::Record(const Event& event) {
  if (!enabled()) return;
  const std::uint64_t idx =
      impl_->next.fetch_add(1, std::memory_order_acq_rel);
  if (idx >= impl_->slots.size()) {
    impl_->dropped.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  impl_->slots[idx] = event;
}

std::vector<Event> Recorder::Events() const {
  URANK_CHECK_MSG(!enabled(), "stop the trace session before reading it");
  const std::uint64_t n = std::min<std::uint64_t>(
      impl_->next.load(std::memory_order_acquire), impl_->slots.size());
  return std::vector<Event>(impl_->slots.begin(),
                            impl_->slots.begin() + static_cast<long>(n));
}

std::uint64_t Recorder::dropped() const {
  return impl_->dropped.load(std::memory_order_acquire);
}

std::uint64_t Recorder::NowNs() const {
  if (impl_->session_start_ns == 0) return 0;
  return SteadyNowNs() - impl_->session_start_ns;
}

std::string Recorder::ChromeTraceJson() const {
  URANK_CHECK_MSG(!enabled(), "stop the trace session before exporting");
  const std::vector<Event> events = Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  // Thread-name metadata first, one lane per tid seen.
  std::vector<std::uint32_t> tids;
  for (const Event& e : events) {
    bool seen = false;
    for (std::uint32_t t : tids) seen = seen || t == e.tid;
    if (!seen) tids.push_back(e.tid);
  }
  bool first = true;
  for (std::uint32_t t : tids) {
    if (!first) out += ",";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                  "\"tid\": %u, \"args\": {\"name\": \"urank-thread-%u\"}}",
                  t, t);
    out += buf;
  }
  for (const Event& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": \"";
    AppendEscaped(&out, e.name != nullptr ? e.name : "?");
    out += "\", \"cat\": \"urank\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": " + FormatUs(e.start_ns);
    out += ", \"dur\": " + FormatUs(e.dur_ns);
    out += ", \"args\": {\"depth\": " + std::to_string(e.depth);
    if (e.arg_name != nullptr) {
      out += ", \"";
      AppendEscaped(&out, e.arg_name);
      out += "\": " + std::to_string(e.arg);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

#if defined(URANK_METRICS_DISABLED)

Span::Span(const char* name, const char* arg_name, long long arg) {
  (void)name;
  (void)arg_name;
  (void)arg;
}

Span::~Span() = default;

#else

Span::Span(const char* name, const char* arg_name, long long arg)
    : name_(name), arg_name_(arg_name), arg_(arg) {
  Recorder& recorder = Recorder::Global();
  if (!recorder.enabled()) return;
  active_ = true;
  ++g_depth;
  start_ns_ = recorder.NowNs();
}

Span::~Span() {
  if (!active_) return;
  Recorder& recorder = Recorder::Global();
  const std::uint64_t end_ns = recorder.NowNs();
  const std::uint32_t depth = --g_depth;
  Event event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.tid = ThisThreadTid();
  event.depth = depth;
  event.arg_name = arg_name_;
  event.arg = arg_;
  recorder.Record(event);
}

#endif  // URANK_METRICS_DISABLED

}  // namespace trace
}  // namespace urank
