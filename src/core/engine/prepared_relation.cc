#include "core/engine/prepared_relation.h"

#include <algorithm>
#include <numeric>

#include "core/engine/trace.h"
#include "core/rank_distribution_attr.h"
#include "util/check.h"
#include "util/metrics.h"

namespace urank {

namespace {

// Statistic-memo metrics, shared by both prepared-relation flavours. A
// lookup is a miss exactly when its compute lambda ran; callers that
// merely wait on another thread's in-flight compute count as hits (they
// paid latency but no work).
struct StatCacheMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;

  static const StatCacheMetrics& Get() {
    metrics::Registry& r = metrics::Registry::Global();
    static const StatCacheMetrics m{
        r.counter("urank_engine_stat_cache_hits_total"),
        r.counter("urank_engine_stat_cache_misses_total")};
    return m;
  }
};

template <typename T, typename Fn>
T InstrumentedLookup(const Fn& lookup) {
  bool computed = false;
  T result = lookup(&computed);
  const StatCacheMetrics& cm = StatCacheMetrics::Get();
  (computed ? cm.misses : cm.hits).Increment();
  return result;
}

}  // namespace

PreparedAttrRelation::PreparedAttrRelation(AttrRelation rel)
    : rel_(std::move(rel)),
      universe_(internal::BuildValueUniverse(rel_)),
      sorted_pdfs_(BuildSortedPdfs(rel_)) {
  const int n = rel_.size();
  ids_.resize(static_cast<size_t>(n));
  expected_scores_.resize(static_cast<size_t>(n));
  position_of_id_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids_[static_cast<size_t>(i)] = rel_.tuple(i).id;
    expected_scores_[static_cast<size_t>(i)] = rel_.tuple(i).ExpectedScore();
    position_of_id_[rel_.tuple(i).id] = i;
  }
  escore_order_.resize(static_cast<size_t>(n));
  std::iota(escore_order_.begin(), escore_order_.end(), 0);
  std::sort(escore_order_.begin(), escore_order_.end(), [&](int a, int b) {
    const double ea = expected_scores_[static_cast<size_t>(a)];
    const double eb = expected_scores_[static_cast<size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
  shard_plan_ = internal::BuildAttrShardPlan(rel_, /*first_touch=*/true);
}

PreparedAttrRelation::PreparedAttrRelation(AttrRelation rel,
                                           AttrPreparedSeed seed)
    : rel_(std::move(rel)),
      expected_scores_(std::move(seed.expected_scores)),
      escore_order_(std::move(seed.escore_order)),
      universe_(std::move(seed.universe)),
      sorted_pdfs_(std::move(seed.sorted_pdfs)) {
  const int n = rel_.size();
  URANK_CHECK_MSG(
      expected_scores_.size() == static_cast<size_t>(n) &&
          escore_order_.size() == static_cast<size_t>(n) &&
          sorted_pdfs_.size() == static_cast<size_t>(n),
      "attr preparation seed does not match the relation size");
  ids_.resize(static_cast<size_t>(n));
  position_of_id_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids_[static_cast<size_t>(i)] = rel_.tuple(i).id;
    position_of_id_[rel_.tuple(i).id] = i;
  }
  shard_plan_ = internal::BuildAttrShardPlan(rel_, /*first_touch=*/true);
}

int PreparedAttrRelation::PositionOfId(int id) const {
  const auto it = position_of_id_.find(id);
  return it == position_of_id_.end() ? -1 : it->second;
}

std::shared_ptr<const std::vector<std::vector<double>>>
PreparedAttrRelation::RankDistributions(TiePolicy ties) const {
  return RankDistributions(ties, ParallelismOptions{}, nullptr);
}

std::shared_ptr<const std::vector<std::vector<double>>>
PreparedAttrRelation::RankDistributions(TiePolicy ties,
                                        const ParallelismOptions& par,
                                        KernelReport* report) const {
  using Result = std::shared_ptr<const std::vector<std::vector<double>>>;
  return InstrumentedLookup<Result>([&](bool* computed) {
    return dists_.GetOrCompute(static_cast<int>(ties), [&] {
      *computed = true;
      URANK_TRACE_SPAN("engine.stat_compute");
      return AttrRankDistributions(rel_, sorted_pdfs_, ties, par, report);
    });
  });
}

std::shared_ptr<const std::vector<double>> PreparedAttrRelation::CachedStat(
    const StatKey& key,
    const std::function<std::vector<double>()>& compute) const {
  using Result = std::shared_ptr<const std::vector<double>>;
  return InstrumentedLookup<Result>([&](bool* computed) {
    return stats_.GetOrCompute(key, [&] {
      *computed = true;
      URANK_TRACE_SPAN("engine.stat_compute");
      return compute();
    });
  });
}

bool PreparedAttrRelation::HasCachedStat(const StatKey& key) const {
  return stats_.Contains(key);
}

PreparedTupleRelation::PreparedTupleRelation(TupleRelation rel)
    : rel_(std::move(rel)) {
  const int n = rel_.size();
  ids_.resize(static_cast<size_t>(n));
  position_of_id_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids_[static_cast<size_t>(i)] = rel_.tuple(i).id;
    position_of_id_[rel_.tuple(i).id] = i;
  }
  rank_order_.resize(static_cast<size_t>(n));
  std::iota(rank_order_.begin(), rank_order_.end(), 0);
  std::sort(rank_order_.begin(), rank_order_.end(), [&](int a, int b) {
    const double sa = rel_.tuple(a).score;
    const double sb = rel_.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  prefix_prob_.assign(static_cast<size_t>(n) + 1, 0.0);
  for (int j = 0; j < n; ++j) {
    prefix_prob_[static_cast<size_t>(j) + 1] =
        prefix_prob_[static_cast<size_t>(j)] +
        rel_.tuple(rank_order_[static_cast<size_t>(j)]).prob;
  }
  shard_plan_ =
      internal::BuildTupleShardPlan(rel_, rank_order_, /*first_touch=*/true);
}

PreparedTupleRelation::PreparedTupleRelation(TupleRelation rel,
                                             TuplePreparedSeed seed)
    : rel_(std::move(rel)),
      rank_order_(std::move(seed.rank_order)),
      prefix_prob_(std::move(seed.prefix_prob)) {
  const int n = rel_.size();
  URANK_CHECK_MSG(
      rank_order_.size() == static_cast<size_t>(n) &&
          prefix_prob_.size() == static_cast<size_t>(n) + 1 &&
          seed.rank_probs.size() == static_cast<size_t>(n),
      "tuple preparation seed does not match the relation size");
  ids_.resize(static_cast<size_t>(n));
  position_of_id_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ids_[static_cast<size_t>(i)] = rel_.tuple(i).id;
    position_of_id_[rel_.tuple(i).id] = i;
  }
  // Same planner call as the eager constructor — the grid and every copied
  // value are pure functions of (rel, order); the pre-gathered probs only
  // skip the gather pass.
  shard_plan_ = internal::BuildTupleShardPlan(
      rel_, rank_order_, &seed.rank_probs, /*first_touch=*/true);
}

std::shared_ptr<const TupleSweepEntryTable>
PreparedTupleRelation::SweepEntries(TiePolicy ties) const {
  return sweep_entries_.GetOrCompute(static_cast<int>(ties), [&] {
    return BuildTupleSweepEntryTable(rel_, rank_order_, ties);
  });
}

int PreparedTupleRelation::PositionOfId(int id) const {
  const auto it = position_of_id_.find(id);
  return it == position_of_id_.end() ? -1 : it->second;
}

std::shared_ptr<const std::vector<double>> PreparedTupleRelation::CachedStat(
    const StatKey& key,
    const std::function<std::vector<double>()>& compute) const {
  using Result = std::shared_ptr<const std::vector<double>>;
  return InstrumentedLookup<Result>([&](bool* computed) {
    return stats_.GetOrCompute(key, [&] {
      *computed = true;
      URANK_TRACE_SPAN("engine.stat_compute");
      return compute();
    });
  });
}

bool PreparedTupleRelation::HasCachedStat(const StatKey& key) const {
  return stats_.Contains(key);
}

}  // namespace urank
