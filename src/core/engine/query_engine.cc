#include "core/engine/query_engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/ranking.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/semantics.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "core/engine/trace.h"
#include "model/possible_worlds.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/simd.h"

namespace urank {
namespace {

// Engine-level metrics (docs/OBSERVABILITY.md has the catalogue). Resolved
// once; QueryStats is a per-call view over the same measurements.
struct EngineMetrics {
  metrics::Counter& queries;
  metrics::Counter& errors;
  metrics::Counter& batches;
  metrics::Counter& dp_cells;
  metrics::Histogram& query_latency;
  metrics::Histogram& prepare_latency;
  metrics::Gauge& arena_bytes;

  static const EngineMetrics& Get() {
    metrics::Registry& r = metrics::Registry::Global();
    static const EngineMetrics m{
        r.counter("urank_engine_queries_total"),
        r.counter("urank_engine_query_errors_total"),
        r.counter("urank_engine_batches_total"),
        r.counter("urank_engine_dp_cells_total"),
        r.histogram("urank_engine_query_latency_us"),
        r.histogram("urank_engine_prepare_latency_us"),
        r.gauge("urank_kernel_arena_bytes")};
    return m;
  }
};

RankingAnswer FromRanked(const std::vector<RankedTuple>& ranked) {
  RankingAnswer answer;
  answer.ids.reserve(ranked.size());
  answer.statistics.reserve(ranked.size());
  for (const RankedTuple& rt : ranked) {
    answer.ids.push_back(rt.id);
    answer.statistics.push_back(rt.statistic);
  }
  return answer;
}

// Probability-carrying answers: ids in rank order plus the per-id
// probability looked up through the prepared id index.
template <typename Prepared>
RankingAnswer WithProbabilities(std::vector<int> ids,
                                const std::vector<double>& probs_by_position,
                                const Prepared& prepared) {
  RankingAnswer answer;
  answer.statistics.reserve(ids.size());
  for (int id : ids) {
    const int pos = prepared.PositionOfId(id);
    answer.statistics.push_back(
        pos >= 0 ? probs_by_position[static_cast<size_t>(pos)] : 0.0);
  }
  answer.ids = std::move(ids);
  return answer;
}

RankingAnswer FromUTopK(const UTopKAnswer& utopk) {
  RankingAnswer answer;
  answer.ids = utopk.ids;
  answer.statistics.assign(utopk.ids.size(), utopk.probability);
  return answer;
}

// The memo-table key a query's ranking statistic lives under, used to
// report cache reuse. U-Topk and attribute-level expected scores have no
// key (never memoized / eagerly built) — both are handled by the callers.
StatKey KeyFor(const RankingQuery& q) {
  switch (q.semantics) {
    case RankingSemantics::kExpectedRank:
      return {StatKey::Kind::kExpectedRank, 0, 0.0, q.ties};
    case RankingSemantics::kMedianRank:
      return {StatKey::Kind::kQuantileRank, 0, 0.5, q.ties};
    case RankingSemantics::kQuantileRank:
      return {StatKey::Kind::kQuantileRank, 0, q.phi, q.ties};
    case RankingSemantics::kUKRanks:
      return {StatKey::Kind::kUKRanksWinners, q.k, 0.0, q.ties};
    case RankingSemantics::kPTk:
    case RankingSemantics::kGlobalTopk:
      return {StatKey::Kind::kTopKProbability, q.k, 0.0, q.ties};
    case RankingSemantics::kExpectedScore:
      return {StatKey::Kind::kExpectedScore, 0, 0.0,
              TiePolicy::kBreakByIndex};
    case RankingSemantics::kUTopk:
      break;
  }
  return {};
}

// Coarse dynamic-program cell counts for a cold run of each semantics;
// formulas documented in docs/API.md.
long long AttrDpCells(const PreparedAttrRelation& p, const RankingQuery& q) {
  const long long n = p.size();
  switch (q.semantics) {
    case RankingSemantics::kExpectedRank:
      return static_cast<long long>(p.universe().values.size()) + n;
    case RankingSemantics::kExpectedScore:
      return n;
    case RankingSemantics::kUTopk:
      return p.NumWorlds();
    default:
      return n * n;  // Every other semantics is rank-matrix backed.
  }
}

long long TupleDpCells(const PreparedTupleRelation& p,
                       const RankingQuery& q) {
  const long long n = p.size();
  const long long m = p.relation().num_rules();
  switch (q.semantics) {
    case RankingSemantics::kExpectedRank:
    case RankingSemantics::kExpectedScore:
      return n;
    case RankingSemantics::kMedianRank:
    case RankingSemantics::kQuantileRank:
      return 2 * n * (m + 1);
    case RankingSemantics::kUTopk:
      return n * (q.k + 1);
    default:
      return n * (m + 1);  // Positional-pmf backed semantics.
  }
}

// The dispatchers run the statistic-producing kernel through its
// parallel-aware overload (which warms the memo cache and reports what it
// did into `report`), then assemble the answer through the same selection
// code the serial facade uses — so answers stay bit-identical to the
// one-shot entry points for any ParallelismOptions. Semantics without a
// parallel kernel (linear scans, world enumeration) run serially and
// leave `report` untouched.
// `prune` is set only for kMedianRank/kQuantileRank cache misses with
// QueryRequest::prune: the pruned top-k kernels return the identical
// answer while scanning a prefix of the expected-score order, and record
// how far they got into `stats`.
RankingAnswer RunAttr(const PreparedAttrRelation& p, const RankingQuery& q,
                      const ParallelismOptions& par, KernelReport* report,
                      bool prune, QueryStats* stats) {
  switch (q.semantics) {
    case RankingSemantics::kExpectedRank:
      return FromRanked(AttrExpectedRankTopK(p, q.k, q.ties, par, report));
    case RankingSemantics::kMedianRank:
    case RankingSemantics::kQuantileRank: {
      const double phi =
          q.semantics == RankingSemantics::kMedianRank ? 0.5 : q.phi;
      if (prune) {
        PrunedTopKResult pruned =
            AttrQuantileRankTopKPrune(p, q.k, phi, q.ties, par, report);
        stats->tuples_scanned = pruned.tuples_scanned;
        stats->prune_stop_position = pruned.prune_stop_position;
        return FromRanked(std::move(pruned.topk));
      }
      AttrQuantileRanks(p, phi, q.ties, par, report);
      return FromRanked(AttrQuantileRankTopK(p, q.k, phi, q.ties));
    }
    case RankingSemantics::kUTopk:
      return FromUTopK(AttrUTopK(p, q.k));
    case RankingSemantics::kUKRanks: {
      RankingAnswer answer;
      answer.ids = AttrUKRanks(p, q.k, q.ties, par, report);
      return answer;
    }
    case RankingSemantics::kPTk: {
      // Computed first so the selection below hits the warmed cache.
      const std::vector<double> probs =
          AttrTopKProbabilities(p, q.k, q.ties, par, report);
      return WithProbabilities(AttrPTk(p, q.k, q.threshold, q.ties), probs,
                               p);
    }
    case RankingSemantics::kGlobalTopk: {
      const std::vector<double> probs =
          AttrTopKProbabilities(p, q.k, q.ties, par, report);
      return WithProbabilities(AttrGlobalTopK(p, q.k, q.ties), probs, p);
    }
    case RankingSemantics::kExpectedScore:
      return FromRanked(AttrExpectedScoreTopK(p, q.k));
  }
  URANK_CHECK_MSG(false, "unknown semantics");
  return {};
}

RankingAnswer RunTuple(const PreparedTupleRelation& p, const RankingQuery& q,
                       const ParallelismOptions& par, KernelReport* report,
                       bool prune, QueryStats* stats) {
  switch (q.semantics) {
    case RankingSemantics::kExpectedRank:
      return FromRanked(TupleExpectedRankTopK(p, q.k, q.ties, par, report));
    case RankingSemantics::kMedianRank:
    case RankingSemantics::kQuantileRank: {
      const double phi =
          q.semantics == RankingSemantics::kMedianRank ? 0.5 : q.phi;
      if (prune) {
        PrunedTopKResult pruned =
            TupleQuantileRankTopKPrune(p, q.k, phi, q.ties);
        stats->tuples_scanned = pruned.tuples_scanned;
        stats->prune_stop_position = pruned.prune_stop_position;
        return FromRanked(std::move(pruned.topk));
      }
      TupleQuantileRanks(p, phi, q.ties, par, report);
      return FromRanked(TupleQuantileRankTopK(p, q.k, phi, q.ties));
    }
    case RankingSemantics::kUTopk:
      return FromUTopK(TupleUTopK(p, q.k));
    case RankingSemantics::kUKRanks: {
      RankingAnswer answer;
      answer.ids = TupleUKRanks(p, q.k, q.ties, par, report);
      return answer;
    }
    case RankingSemantics::kPTk: {
      const std::vector<double> probs =
          TupleTopKProbabilities(p, q.k, q.ties, par, report);
      return WithProbabilities(TuplePTk(p, q.k, q.threshold, q.ties), probs,
                               p);
    }
    case RankingSemantics::kGlobalTopk: {
      const std::vector<double> probs =
          TupleTopKProbabilities(p, q.k, q.ties, par, report);
      return WithProbabilities(TupleGlobalTopK(p, q.k, q.ties), probs, p);
    }
    case RankingSemantics::kExpectedScore:
      return FromRanked(TupleExpectedScoreTopK(p, q.k));
  }
  URANK_CHECK_MSG(false, "unknown semantics");
  return {};
}

}  // namespace

const char* ToString(QueryStatusCode code) {
  switch (code) {
    case QueryStatusCode::kOk:
      return "ok";
    case QueryStatusCode::kInvalidK:
      return "invalid-k";
    case QueryStatusCode::kInvalidPhi:
      return "invalid-phi";
    case QueryStatusCode::kInvalidThreshold:
      return "invalid-threshold";
    case QueryStatusCode::kWorldCountNotEnumerable:
      return "world-count-not-enumerable";
    case QueryStatusCode::kInvalidRequest:
      return "invalid-request";
    case QueryStatusCode::kUnknownRelation:
      return "unknown-relation";
    case QueryStatusCode::kOverloaded:
      return "overloaded";
    case QueryStatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case QueryStatusCode::kEpochNotAvailable:
      return "epoch-not-available";
  }
  return "?";
}

bool FromString(std::string_view name, QueryStatusCode* out) {
  for (int value = 0; value < kQueryStatusCodeCount; ++value) {
    const auto code = static_cast<QueryStatusCode>(value);
    if (name == ToString(code)) {
      *out = code;
      return true;
    }
  }
  return false;
}

int WireValue(QueryStatusCode code) { return static_cast<int>(code); }

bool FromWireValue(int value, QueryStatusCode* out) {
  // The switch (no default) is what forces a new enumerator to gain a wire
  // mapping: -Werror=switch rejects this function until the case — and
  // therefore a conscious wire-value decision — is added.
  const auto code = static_cast<QueryStatusCode>(value);
  switch (code) {
    case QueryStatusCode::kOk:
    case QueryStatusCode::kInvalidK:
    case QueryStatusCode::kInvalidPhi:
    case QueryStatusCode::kInvalidThreshold:
    case QueryStatusCode::kWorldCountNotEnumerable:
    case QueryStatusCode::kInvalidRequest:
    case QueryStatusCode::kUnknownRelation:
    case QueryStatusCode::kOverloaded:
    case QueryStatusCode::kDeadlineExceeded:
    case QueryStatusCode::kEpochNotAvailable:
      *out = code;
      return true;
  }
  return false;
}

std::shared_ptr<const PreparedAttrRelation> QueryEngine::Prepare(
    AttrRelation rel) {
  URANK_TRACE_SPAN_ARG("engine.prepare", "n", rel.size());
  metrics::ScopedHistogramTimer timer(EngineMetrics::Get().prepare_latency);
  return std::make_shared<const PreparedAttrRelation>(std::move(rel));
}

std::shared_ptr<const PreparedTupleRelation> QueryEngine::Prepare(
    TupleRelation rel) {
  URANK_TRACE_SPAN_ARG("engine.prepare", "n", rel.size());
  metrics::ScopedHistogramTimer timer(EngineMetrics::Get().prepare_latency);
  return std::make_shared<const PreparedTupleRelation>(std::move(rel));
}

QueryEngine::QueryEngine(std::shared_ptr<const PreparedAttrRelation> prepared)
    : attr_(std::move(prepared)) {
  URANK_CHECK_MSG(attr_ != nullptr, "prepared relation must not be null");
}

QueryEngine::QueryEngine(
    std::shared_ptr<const PreparedTupleRelation> prepared)
    : tuple_(std::move(prepared)) {
  URANK_CHECK_MSG(tuple_ != nullptr, "prepared relation must not be null");
}

QueryEngine::QueryEngine(std::shared_ptr<MutableAttrRelation> store)
    : mutable_attr_(std::move(store)) {
  URANK_CHECK_MSG(mutable_attr_ != nullptr, "mutable store must not be null");
}

QueryEngine::QueryEngine(std::shared_ptr<MutableTupleRelation> store)
    : mutable_tuple_(std::move(store)) {
  URANK_CHECK_MSG(mutable_tuple_ != nullptr,
                  "mutable store must not be null");
}

QueryEngine::QueryEngine(AttrRelation rel) : attr_(Prepare(std::move(rel))) {}

QueryEngine::QueryEngine(TupleRelation rel)
    : tuple_(Prepare(std::move(rel))) {}

ResolvedRelation QueryEngine::Resolve() const {
  ResolvedRelation resolved;
  if (mutable_attr_ != nullptr) {
    AttrEpochSnapshot snapshot = mutable_attr_->Snapshot();
    resolved.attr = std::move(snapshot.prepared);
    resolved.epoch = snapshot.epoch;
  } else if (mutable_tuple_ != nullptr) {
    TupleEpochSnapshot snapshot = mutable_tuple_->Snapshot();
    resolved.tuple = std::move(snapshot.prepared);
    resolved.epoch = snapshot.epoch;
  } else {
    resolved.attr = attr_;
    resolved.tuple = tuple_;
  }
  return resolved;
}

QueryStatus QueryEngine::Validate(const RankingQuery& query) const {
  return ValidateResolved(query, Resolve());
}

QueryStatus QueryEngine::ValidateResolved(
    const RankingQuery& query, const ResolvedRelation& resolved) const {
  if (query.k < 1) {
    std::ostringstream msg;
    msg << "k must be >= 1 (got " << query.k << ")";
    return {QueryStatusCode::kInvalidK, msg.str()};
  }
  if (query.semantics == RankingSemantics::kQuantileRank &&
      !(query.phi > 0.0 && query.phi <= 1.0)) {
    std::ostringstream msg;
    msg << "phi must be in (0,1] (got " << query.phi << ")";
    return {QueryStatusCode::kInvalidPhi, msg.str()};
  }
  if (query.semantics == RankingSemantics::kPTk &&
      !(query.threshold > 0.0 && query.threshold <= 1.0)) {
    std::ostringstream msg;
    msg << "threshold must be in (0,1] (got " << query.threshold << ")";
    return {QueryStatusCode::kInvalidThreshold, msg.str()};
  }
  if (query.semantics == RankingSemantics::kUTopk &&
      resolved.attr != nullptr &&
      resolved.attr->NumWorlds() > kMaxEnumerableWorlds) {
    std::ostringstream msg;
    msg << "U-Topk on this attribute-level relation requires enumerating "
        << resolved.attr->NumWorlds() << " worlds (limit "
        << kMaxEnumerableWorlds << ")";
    return {QueryStatusCode::kWorldCountNotEnumerable, msg.str()};
  }
  return QueryStatus::Ok();
}

QueryResult QueryEngine::Run(const QueryRequest& request) const {
  return RunResolved(request, Resolve());
}

QueryResult QueryEngine::RunResolved(const QueryRequest& request,
                                     const ResolvedRelation& resolved) const {
  const RankingQuery& query = request.options;
  // Apply the runtime's placement constraints up front: resolve threads
  // and clamp a kNodeLocal request to one node's core count. Pure
  // scheduling — the answer is bit-identical either way; the clamp is
  // surfaced in QueryStats::threads_clamped.
  bool threads_clamped = false;
  const ParallelismOptions par =
      EffectiveParallelism(request.parallelism, &threads_clamped);
  const EngineMetrics& em = EngineMetrics::Get();
  URANK_TRACE_SPAN_ARG("engine.run", "k", query.k);
  metrics::ScopedHistogramTimer timer(em.query_latency);
  em.queries.Increment();
  QueryResult result;
  result.stats.epoch = resolved.epoch;
  if (request.min_epoch > resolved.epoch) {
    std::ostringstream msg;
    msg << "epoch " << request.min_epoch
        << " not yet published (latest is " << resolved.epoch << ")";
    result.status = {QueryStatusCode::kEpochNotAvailable, msg.str()};
    em.errors.Increment();
    result.stats.wall_ms = timer.ElapsedUs() * 1e-3;
    return result;
  }
  result.status = ValidateResolved(query, resolved);
  if (!result.status.ok()) {
    em.errors.Increment();
    result.stats.wall_ms = timer.ElapsedUs() * 1e-3;
    return result;
  }

  // An empty relation answers every semantics with an empty top-k: there
  // is nothing to rank, and the DP kernels' debug contracts (which the
  // one-shot entry points keep — see the death tests) assume at least one
  // tuple.
  const int relation_size =
      resolved.attr != nullptr ? resolved.attr->size() : resolved.tuple->size();
  if (relation_size == 0) {
    result.stats.simd_target = ToString(ActiveSimdTarget());
    result.stats.wall_ms = timer.ElapsedUs() * 1e-3;
    return result;
  }

  const bool has_key = query.semantics != RankingSemantics::kUTopk;
  // Pruned execution applies to the quantile family only, and only on a
  // statistic-cache miss: a warmed memo makes the unpruned selection a
  // cheap cache hit, and a pruned run never populates the memo (it
  // evaluates a scanned prefix, not the full vector).
  const bool want_prune =
      request.prune &&
      (query.semantics == RankingSemantics::kMedianRank ||
       query.semantics == RankingSemantics::kQuantileRank);
  KernelReport report;  // stays {1, 0} unless a parallel kernel ran
  {
    // Per-semantics kernel span; ToString returns a static literal, which
    // is what the recorder's no-copy contract requires.
    URANK_TRACE_SPAN_ARG(ToString(query.semantics), "k", query.k);
    if (resolved.attr != nullptr) {
      const PreparedAttrRelation& attr = *resolved.attr;
      // Attribute-level expected scores are built eagerly at preparation,
      // so that semantics is always a cache hit; everything else consults
      // the memo table it is backed by.
      result.stats.reused_cache =
          query.semantics == RankingSemantics::kExpectedScore ||
          (has_key && attr.HasCachedStat(KeyFor(query)));
      const bool prune = want_prune && !result.stats.reused_cache;
      result.answer =
          RunAttr(attr, query, par, &report, prune, &result.stats);
      // A pruned run touches one O(n) rank DP per scanned tuple instead of
      // the full n-by-n matrix.
      result.stats.dp_cells =
          result.stats.reused_cache
              ? 0
              : (prune ? result.stats.tuples_scanned * attr.size()
                       : AttrDpCells(attr, query));
      result.stats.tuples_pruned =
          result.stats.reused_cache ? attr.size() : 0;
    } else {
      const PreparedTupleRelation& tuple = *resolved.tuple;
      result.stats.reused_cache =
          has_key && tuple.HasCachedStat(KeyFor(query));
      const bool prune = want_prune && !result.stats.reused_cache;
      result.answer =
          RunTuple(tuple, query, par, &report, prune, &result.stats);
      const long long m = tuple.relation().num_rules();
      result.stats.dp_cells =
          result.stats.reused_cache
              ? 0
              : (prune ? 2 * result.stats.tuples_scanned * (m + 1)
                       : TupleDpCells(tuple, query));
      result.stats.tuples_pruned =
          result.stats.reused_cache ? tuple.size() : 0;
    }
  }
  em.dp_cells.Increment(result.stats.dp_cells);
  em.arena_bytes.SetMax(static_cast<double>(report.arena_bytes));
  result.stats.threads_used = report.threads_used;
  result.stats.nodes_used = report.nodes_used;
  result.stats.threads_clamped = threads_clamped;
  result.stats.arena_bytes = report.arena_bytes;
  result.stats.simd_target = ToString(ActiveSimdTarget());
  result.stats.wall_ms = timer.ElapsedUs() * 1e-3;
  return result;
}

std::vector<QueryResult> QueryEngine::RunBatch(
    const std::vector<QueryRequest>& requests, int threads) const {
  std::vector<QueryResult> results(requests.size());
  if (requests.empty()) return results;
  EngineMetrics::Get().batches.Increment();
  URANK_TRACE_SPAN_ARG("engine.run_batch", "queries",
                       static_cast<long long>(requests.size()));
  // One snapshot for the whole batch: every request answers from the same
  // epoch even while writers publish concurrently.
  const ResolvedRelation resolved = Resolve();
  // One chunk per request on the shared process-wide pool; results land at
  // disjoint indices, so claim order is irrelevant. ParallelFor's caller
  // participation keeps nesting with intra-query kernels deadlock-free.
  ParallelFor(static_cast<int>(requests.size()), ResolveThreads(threads),
              [&](int i, int /*slot*/) {
                results[static_cast<size_t>(i)] =
                    RunResolved(requests[static_cast<size_t>(i)], resolved);
              });
  return results;
}

QueryResult QueryEngine::Run(const RankingQuery& query) const {
  QueryRequest request;
  request.options = query;
  request.parallelism = par_;
  return Run(request);
}

std::vector<QueryResult> QueryEngine::RunBatch(
    const std::vector<RankingQuery>& queries, int threads) const {
  std::vector<QueryRequest> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i].options = queries[i];
    requests[i].parallelism = par_;
  }
  return RunBatch(requests, threads);
}

}  // namespace urank
