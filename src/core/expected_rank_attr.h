// Expected ranks in the attribute-level uncertainty model (paper Section 5).
//
// The expected rank of tuple t_i is r(t_i) = E[R(t_i)] = Σ_{j≠i}
// Pr[X_j > X_i] (eq. 3). Three computations are provided:
//   * AttrExpectedRanksBruteForce — the O(N²) pairwise sum (the paper's BFS
//     baseline);
//   * AttrExpectedRanks — the A-ERank algorithm, O(N log N) for constant
//     pdf size, via the value-universe decomposition of eq. (4);
//   * AttrExpectedRankTopKPrune — the A-ERank-Prune algorithm (Section
//     5.2), which consumes tuples in decreasing expected-score order and
//     stops once the Markov-bound pruning condition of eqs. (5)–(6)
//     guarantees the top-k lies within the scanned prefix. Its answer is
//     the paper's surrogate: the exact top-k of the curtailed prefix, which
//     approximates (usually equals) the true top-k.

#ifndef URANK_CORE_EXPECTED_RANK_ATTR_H_
#define URANK_CORE_EXPECTED_RANK_ATTR_H_

#include <vector>

#include "core/ranking.h"
#include "model/attr_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

class PreparedAttrRelation;  // core/engine/prepared_relation.h

// O(N² s) reference: evaluates eq. (3) pair by pair. `ties` selects the
// rank definition (see TiePolicy); the paper's Definition 6 is
// kStrictGreater.
std::vector<double> AttrExpectedRanksBruteForce(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kStrictGreater);

// A-ERank: exact expected ranks for all tuples in O(sN log(sN)) using the
// sorted value universe and suffix mass sums (eq. 4). Results are indexed
// by tuple position, like the relation.
std::vector<double> AttrExpectedRanks(
    const AttrRelation& rel, TiePolicy ties = TiePolicy::kStrictGreater);

// Exact top-k by expected rank (A-ERank + a size-k selection). Ties broken
// by tuple id.
std::vector<RankedTuple> AttrExpectedRankTopK(
    const AttrRelation& rel, int k,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Prepared-state overloads: reuse the prepared sorted value universe
// (q(v) suffix masses) and memoize the full rank vector in the prepared
// cache. Results are bit-identical to the one-shot forms above.
std::vector<double> AttrExpectedRanks(
    const PreparedAttrRelation& prepared,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Requires k >= 1.
std::vector<RankedTuple> AttrExpectedRankTopK(
    const PreparedAttrRelation& prepared, int k,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Parallel prepared overloads: sweep the prepared relation's shard plan
// (contiguous tuple ranges with precomputed per-entry tie masses) under
// `par`, so shards run concurrently with no cross-shard state. Results
// are bit-identical to the serial forms for every thread count, placement
// policy, and topology; `report` receives threads/nodes used when the
// value was actually computed (a cache hit leaves it untouched).
std::vector<double> AttrExpectedRanks(const PreparedAttrRelation& prepared,
                                      TiePolicy ties,
                                      const ParallelismOptions& par,
                                      KernelReport* report = nullptr);
std::vector<RankedTuple> AttrExpectedRankTopK(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report = nullptr);

// Result of the pruned computation: the (approximate) top-k plus the
// number of tuples retrieved from the sorted stream before the pruning
// condition fired.
struct AttrPruneResult {
  std::vector<RankedTuple> topk;
  int accessed = 0;
};

// A-ERank-Prune. Requires every score value to be strictly positive (the
// Markov tail bounds of eqs. (5)–(6) need non-negative scores bounded away
// from zero) and k >= 1. Uses the paper's rank definition
// (TiePolicy::kStrictGreater).
//
// `clamp_tail_bounds` selects the tightened variant (ablation A2): each
// Markov term E[X_n]/v is a probability bound, so clamping it to
// min(1, E[X_n]/v) keeps both eqs. (5) and (6) sound while pruning
// earlier. false reproduces the paper's bounds verbatim.
AttrPruneResult AttrExpectedRankTopKPrune(const AttrRelation& rel, int k,
                                          bool clamp_tail_bounds = false);

}  // namespace urank

#endif  // URANK_CORE_EXPECTED_RANK_ATTR_H_
