#include "core/expected_rank_tuple.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "core/access.h"
#include "core/engine/prepared_relation.h"
#include "core/internal/kernel_arena.h"
#include "core/internal/shard_plan.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {
namespace {

// Evaluates eq. (8) from the aggregate masses:
//   p      — existence probability of t_i,
//   above  — probability mass of tuples ranked above t_i (any rule),
//   same_above — above-mass restricted to t_i's own rule,
//   same_other — t_i's rule mass excluding t_i itself,
//   ew     — E[|W|].
double ExpectedRankFromMasses(double p, double above, double same_above,
                              double same_other, double ew) {
  return p * (above - same_above) + same_other +
         (1.0 - p) * (ew - p - same_other);
}

// True when t_j is ranked above t_i under the tie policy.
bool IsAbove(const TLTuple& tj, int j, const TLTuple& ti, int i,
             TiePolicy ties) {
  if (tj.score != ti.score) return tj.score > ti.score;
  return ties == TiePolicy::kBreakByIndex && j < i;
}

}  // namespace

std::vector<double> TupleExpectedRanksBruteForce(const TupleRelation& rel,
                                                 TiePolicy ties) {
  const int n = rel.size();
  const double ew = rel.ExpectedWorldSize();
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const TLTuple& ti = rel.tuple(i);
    double above = 0.0, same_above = 0.0, same_other = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const TLTuple& tj = rel.tuple(j);
      const bool same_rule = rel.rule_of(j) == rel.rule_of(i);
      if (IsAbove(tj, j, ti, i, ties)) {
        above += tj.prob;
        if (same_rule) same_above += tj.prob;
      }
      if (same_rule) same_other += tj.prob;
    }
    ranks[static_cast<size_t>(i)] =
        ExpectedRankFromMasses(ti.prob, above, same_above, same_other, ew);
  }
  return ranks;
}

namespace {

// T-ERank sweep over a precomputed (score desc, index asc) permutation.
URANK_KERNEL
std::vector<double> ExpectedRanksInOrder(const TupleRelation& rel,
                                         const std::vector<int>& order,
                                         TiePolicy ties) {
  const int n = rel.size();
  const double ew = rel.ExpectedWorldSize();
  const vk::KernelOps& ops = vk::Active();
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  std::vector<double> rule_above(static_cast<size_t>(rel.num_rules()), 0.0);
  // Inclusive prefix sums of existence probability in rank order:
  // pref[idx] = Σ_{m <= idx} p(order[m]), so the "above" mass at a run
  // starting at pos is pref[pos-1]. The scalar kernel accumulates left to
  // right — the same addition sequence the incremental sweep performed.
  internal::AlignedBuf pref;
  pref.resize(static_cast<size_t>(n));
  for (size_t idx = 0; idx < order.size(); ++idx) {
    // Gather through the rank-order permutation; the contiguous prefix sum
    // below is the vector kernel.
    // urank-lint: allow(kernel-vectorize)
    pref[idx] = rel.tuple(order[idx]).prob;
  }
  ops.prefix_sum(pref.data(), static_cast<size_t>(n));
  // Sweep in rank order; under the strict policy a whole run of equal
  // scores shares the same "above" masses, so flush a run only after every
  // member was handled. Under kBreakByIndex each tuple is its own run.
  size_t pos = 0;
  while (pos < order.size()) {
    size_t end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (end < order.size() &&
             rel.tuple(order[end]).score == rel.tuple(order[pos]).score) {
        ++end;
      }
    }
    const double prefix_above = pos == 0 ? 0.0 : pref[pos - 1];
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = order[idx];
      const TLTuple& ti = rel.tuple(i);
      const int r = rel.rule_of(i);
      const double same_other = rel.rule_prob_sum(r) - ti.prob;
      // Scatter through the rank-order permutation with a data-dependent
      // rule-id gather; the contiguous mass is the prefix-sum kernel above.
      // urank-lint: allow(kernel-vectorize)
      ranks[static_cast<size_t>(i)] = ExpectedRankFromMasses(
          ti.prob, prefix_above, rule_above[static_cast<size_t>(r)],
          same_other, ew);
    }
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = order[idx];
      // Scatter keyed by rule id — data-dependent indices, not a
      // contiguous sweep a vector kernel could express.
      // urank-lint: allow(kernel-vectorize)
      rule_above[static_cast<size_t>(rel.rule_of(i))] += rel.tuple(i).prob;
    }
    pos = end;
  }
  // Eq. (8) mixes the in-world rank (< |W| <= N) with the absent branch's
  // E[|W|] penalty, so every expected rank lies in [0, N].
  URANK_DCHECK_MSG(
      internal::AllFiniteInRange(ranks, 0.0, static_cast<double>(n),
                                 1e-9 * static_cast<double>(n > 0 ? n : 1)),
      "expected rank outside [0, N]");
  return ranks;
}

// Shard-local T-ERank pass: sweeps one shard exactly as the serial kernel
// would sweep positions [shard.begin, shard.end) — the entry state in the
// plan is the serial state at shard.begin bit for bit, and every read
// below reproduces the serial kernel's reads (prefix_above from the global
// prefix values, rule_above continued by the same additions in the same
// order). Writes to `ranks` are disjoint across shards.
URANK_KERNEL
void ExpectedRanksShardSweep(const TupleRelation& rel,
                             const internal::TupleShard& shard, TiePolicy ties,
                             double ew, std::vector<double>* ranks) {
  std::vector<double> rule_above = shard.entry_rule_mass;
  const size_t len = shard.order.size();
  size_t pos = 0;
  while (pos < len) {
    size_t end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      // Shard boundaries are run-aligned, so a run never extends past
      // `len` (or backward past 0): run detection matches the global sweep.
      while (end < len && rel.tuple(shard.order[end]).score ==
                              rel.tuple(shard.order[pos]).score) {
        ++end;
      }
    }
    const double prefix_above =
        pos == 0 ? shard.entry_prefix : shard.pref[pos - 1];
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = shard.order[idx];
      const TLTuple& ti = rel.tuple(i);
      const int r = rel.rule_of(i);
      const double same_other = rel.rule_prob_sum(r) - ti.prob;
      // Scatter through the rank-order permutation with a data-dependent
      // rule-id gather; the contiguous mass lives in the plan's prefix
      // values, computed by the prefix-sum kernel at plan-build time.
      // urank-lint: allow(kernel-vectorize)
      (*ranks)[static_cast<size_t>(i)] = ExpectedRankFromMasses(
          ti.prob, prefix_above, rule_above[static_cast<size_t>(r)],
          same_other, ew);
    }
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = shard.order[idx];
      // Scatter keyed by rule id — data-dependent indices, not a
      // contiguous sweep a vector kernel could express.
      // urank-lint: allow(kernel-vectorize)
      rule_above[static_cast<size_t>(rel.rule_of(i))] += rel.tuple(i).prob;
    }
    pos = end;
  }
}

}  // namespace

std::vector<double> TupleExpectedRanksSharded(
    const TupleRelation& rel, const internal::TupleShardPlan& plan,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report) {
  const int n = rel.size();
  const double ew = rel.ExpectedWorldSize();
  std::vector<double> ranks(static_cast<size_t>(n), 0.0);
  const int num_chunks = static_cast<int>(plan.shards.size());
  const int workers = PlannedWorkers(par, static_cast<long long>(n));
  const ForRunInfo info = ParallelForPlaced(
      num_chunks, workers, par.placement, [&](int chunk, int /*slot*/) {
        ExpectedRanksShardSweep(rel, plan.shards[static_cast<size_t>(chunk)],
                                ties, ew, &ranks);
      });
  if (report != nullptr) {
    KernelReport kr;
    kr.threads_used = info.participants;
    kr.nodes_used = info.nodes_used;
    report->Merge(kr);
  }
  URANK_DCHECK_MSG(
      internal::AllFiniteInRange(ranks, 0.0, static_cast<double>(n),
                                 1e-9 * static_cast<double>(n > 0 ? n : 1)),
      "expected rank outside [0, N]");
  return ranks;
}

std::vector<double> TupleExpectedRanks(const TupleRelation& rel,
                                       TiePolicy ties) {
  const int n = rel.size();
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return ExpectedRanksInOrder(rel, order, ties);
}

std::vector<double> TupleExpectedRanks(const PreparedTupleRelation& prepared,
                                       TiePolicy ties) {
  const StatKey key{StatKey::Kind::kExpectedRank, 0, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    return ExpectedRanksInOrder(prepared.relation(), prepared.rank_order(),
                                ties);
  });
}

std::vector<RankedTuple> TupleExpectedRankTopK(const TupleRelation& rel,
                                               int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<double> ranks = TupleExpectedRanks(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) {
    ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  }
  return TopKByStatistic(ids, ranks, k);
}

std::vector<RankedTuple> TupleExpectedRankTopK(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TopKByStatistic(prepared.ids(), TupleExpectedRanks(prepared, ties),
                         k);
}

std::vector<double> TupleExpectedRanks(const PreparedTupleRelation& prepared,
                                       TiePolicy ties,
                                       const ParallelismOptions& par,
                                       KernelReport* report) {
  const StatKey key{StatKey::Kind::kExpectedRank, 0, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    return TupleExpectedRanksSharded(prepared.relation(),
                                     prepared.shard_plan(), ties, par, report);
  });
}

std::vector<RankedTuple> TupleExpectedRankTopK(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TopKByStatistic(prepared.ids(),
                         TupleExpectedRanks(prepared, ties, par, report), k);
}

TuplePruneResult TupleExpectedRankTopKPrune(const TupleRelation& rel, int k,
                                            TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  SortedTupleStream stream(rel);
  const double ew = stream.expected_world_size();

  std::vector<int> seen_ids;
  std::vector<double> seen_ranks;
  // Max-heap over the k smallest exact ranks seen so far.
  std::priority_queue<double> worst_of_best;

  std::vector<double> rule_above(static_cast<size_t>(rel.num_rules()), 0.0);
  double prefix_above = 0.0;  // flushed mass: ranked above the current run
  // Pending tuples of the current equal-score run (strict policy only).
  std::vector<int> pending;
  double pending_score = 0.0;

  auto flush_pending = [&]() {
    for (int i : pending) {
      prefix_above += rel.tuple(i).prob;
      rule_above[static_cast<size_t>(rel.rule_of(i))] += rel.tuple(i).prob;
    }
    pending.clear();
  };

  while (stream.HasNext()) {
    const int i = stream.Next();
    const TLTuple& ti = rel.tuple(i);
    if (ties == TiePolicy::kStrictGreater) {
      if (!pending.empty() && ti.score < pending_score) flush_pending();
      pending_score = ti.score;
    }
    const int r = rel.rule_of(i);
    const double same_other = rel.rule_prob_sum(r) - ti.prob;
    const double rank = ExpectedRankFromMasses(
        ti.prob, prefix_above, rule_above[static_cast<size_t>(r)], same_other,
        ew);
    seen_ids.push_back(ti.id);
    seen_ranks.push_back(rank);
    if (static_cast<int>(worst_of_best.size()) < k) {
      worst_of_best.push(rank);
    } else if (rank < worst_of_best.top()) {
      worst_of_best.pop();
      worst_of_best.push(rank);
    }
    if (ties == TiePolicy::kStrictGreater) {
      pending.push_back(i);
    } else {
      prefix_above += ti.prob;
      rule_above[static_cast<size_t>(r)] += ti.prob;
    }

    // Eq. (9), tie-safe form: every unseen tuple has expected rank at least
    // (flushed mass) - 1. Under the strict policy the flushed mass counts
    // tuples scoring strictly above the current run — sound even when the
    // next unseen tuple ties the current score; under kBreakByIndex every
    // seen tuple ranks above every unseen one, so the flushed mass is the
    // full seen mass.
    const double unseen_lower_bound = prefix_above - 1.0;
    if (static_cast<int>(worst_of_best.size()) == k &&
        worst_of_best.top() <= unseen_lower_bound) {
      break;
    }
  }

  return {TopKByStatistic(seen_ids, seen_ranks, k), stream.accessed()};
}

}  // namespace urank
