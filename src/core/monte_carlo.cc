#include "core/monte_carlo.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace urank {
namespace {

// Per-tuple sampling tables: cumulative pdf weights for inversion.
struct AttrSampler {
  std::vector<std::vector<double>> cdf;     // per tuple, cumulative probs
  std::vector<std::vector<double>> values;  // per tuple, matching values

  explicit AttrSampler(const AttrRelation& rel) {
    cdf.reserve(static_cast<size_t>(rel.size()));
    values.reserve(static_cast<size_t>(rel.size()));
    for (const AttrTuple& t : rel.tuples()) {
      std::vector<double> c, v;
      double run = 0.0;
      for (const ScoreValue& sv : t.pdf) {
        URANK_DCHECK_PROB(sv.prob);
        run += sv.prob;
        c.push_back(run);
        v.push_back(sv.value);
      }
      c.back() = 1.0;  // guard round-off
      cdf.push_back(std::move(c));
      values.push_back(std::move(v));
    }
  }
};

// Ranks of all tuples within one attribute-level world, written to
// `ranks`. O(N log N).
void RanksInAttrWorld(const std::vector<double>& scores, TiePolicy ties,
                      std::vector<int>* order, std::vector<int>* ranks) {
  const int n = static_cast<int>(scores.size());
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(), [&](int a, int b) {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  int pos = 0;
  while (pos < n) {
    int end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (end < n && scores[static_cast<size_t>((*order)[static_cast<size_t>(end)])] ==
                            scores[static_cast<size_t>((*order)[static_cast<size_t>(pos)])]) {
        ++end;
      }
    }
    for (int idx = pos; idx < end; ++idx) {
      (*ranks)[static_cast<size_t>((*order)[static_cast<size_t>(idx)])] =
          ties == TiePolicy::kStrictGreater ? pos : idx;
    }
    pos = end;
  }
}

// Ranks of all tuples within one tuple-level world (absent tuples get
// |W|), written to `ranks`. O(N log N).
void RanksInTupleWorld(const TupleRelation& rel,
                       const std::vector<bool>& present, TiePolicy ties,
                       std::vector<int>* appearing, std::vector<int>* ranks) {
  appearing->clear();
  for (int i = 0; i < rel.size(); ++i) {
    if (present[static_cast<size_t>(i)]) appearing->push_back(i);
  }
  std::sort(appearing->begin(), appearing->end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  const int world_size = static_cast<int>(appearing->size());
  std::fill(ranks->begin(), ranks->end(), world_size);
  int pos = 0;
  while (pos < world_size) {
    int end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (end < world_size &&
             rel.tuple((*appearing)[static_cast<size_t>(end)]).score ==
                 rel.tuple((*appearing)[static_cast<size_t>(pos)]).score) {
        ++end;
      }
    }
    for (int idx = pos; idx < end; ++idx) {
      (*ranks)[static_cast<size_t>((*appearing)[static_cast<size_t>(idx)])] =
          ties == TiePolicy::kStrictGreater ? pos : idx;
    }
    pos = end;
  }
}

}  // namespace

void SampleAttrWorld(const AttrRelation& rel, Rng& rng,
                     std::vector<double>* out) {
  URANK_CHECK_MSG(out != nullptr &&
                      static_cast<int>(out->size()) == rel.size(),
                  "out must have size rel.size()");
  for (int i = 0; i < rel.size(); ++i) {
    const AttrTuple& t = rel.tuple(i);
    const double u = rng.Uniform01();
    URANK_DCHECK_PROB(u);
    double run = 0.0;
    size_t l = 0;
    for (; l + 1 < t.pdf.size(); ++l) {
      URANK_DCHECK_PROB(t.pdf[l].prob);
      run += t.pdf[l].prob;
      if (u < run) break;
    }
    (*out)[static_cast<size_t>(i)] = t.pdf[l].value;
  }
}

void SampleTupleWorld(const TupleRelation& rel, Rng& rng,
                      std::vector<bool>* out) {
  URANK_CHECK_MSG(out != nullptr &&
                      static_cast<int>(out->size()) == rel.size(),
                  "out must have size rel.size()");
  std::fill(out->begin(), out->end(), false);
  for (int r = 0; r < rel.num_rules(); ++r) {
    const double u = rng.Uniform01();
    URANK_DCHECK_PROB(u);
    double run = 0.0;
    for (int idx : rel.rule(r)) {
      URANK_DCHECK_PROB(rel.tuple(idx).prob);
      run += rel.tuple(idx).prob;
      if (u < run) {
        (*out)[static_cast<size_t>(idx)] = true;
        break;
      }
    }
    // u >= total rule mass: the rule contributes no tuple.
  }
}

std::vector<double> AttrExpectedRanksMonteCarlo(const AttrRelation& rel,
                                                int samples, Rng& rng,
                                                TiePolicy ties) {
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<double> scores(static_cast<size_t>(n));
  std::vector<int> order(static_cast<size_t>(n));
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  for (int s = 0; s < samples; ++s) {
    SampleAttrWorld(rel, rng, &scores);
    RanksInAttrWorld(scores, ties, &order, &ranks);
    for (int i = 0; i < n; ++i) {
      sums[static_cast<size_t>(i)] += ranks[static_cast<size_t>(i)];
    }
  }
  for (double& v : sums) v /= samples;
  return sums;
}

std::vector<double> TupleExpectedRanksMonteCarlo(const TupleRelation& rel,
                                                 int samples, Rng& rng,
                                                 TiePolicy ties) {
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<bool> present(static_cast<size_t>(n));
  std::vector<int> appearing;
  appearing.reserve(static_cast<size_t>(n));
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<double> sums(static_cast<size_t>(n), 0.0);
  for (int s = 0; s < samples; ++s) {
    SampleTupleWorld(rel, rng, &present);
    RanksInTupleWorld(rel, present, ties, &appearing, &ranks);
    for (int i = 0; i < n; ++i) {
      sums[static_cast<size_t>(i)] += ranks[static_cast<size_t>(i)];
    }
  }
  for (double& v : sums) v /= samples;
  return sums;
}

std::vector<std::vector<double>> AttrRankDistributionsMonteCarlo(
    const AttrRelation& rel, int samples, Rng& rng, TiePolicy ties) {
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<double> scores(static_cast<size_t>(n));
  std::vector<int> order(static_cast<size_t>(n));
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n),
      std::vector<double>(static_cast<size_t>(std::max(n, 1)), 0.0));
  for (int s = 0; s < samples; ++s) {
    SampleAttrWorld(rel, rng, &scores);
    RanksInAttrWorld(scores, ties, &order, &ranks);
    for (int i = 0; i < n; ++i) {
      dist[static_cast<size_t>(i)][static_cast<size_t>(ranks[static_cast<size_t>(i)])] +=
          1.0;
    }
  }
  for (auto& row : dist) {
    for (double& v : row) v /= samples;
    URANK_DCHECK_NORMALIZED(row);
  }
  return dist;
}

std::vector<std::vector<double>> TupleRankDistributionsMonteCarlo(
    const TupleRelation& rel, int samples, Rng& rng, TiePolicy ties) {
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<bool> present(static_cast<size_t>(n));
  std::vector<int> appearing;
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n),
      std::vector<double>(static_cast<size_t>(n) + 1, 0.0));
  for (int s = 0; s < samples; ++s) {
    SampleTupleWorld(rel, rng, &present);
    RanksInTupleWorld(rel, present, ties, &appearing, &ranks);
    for (int i = 0; i < n; ++i) {
      dist[static_cast<size_t>(i)][static_cast<size_t>(ranks[static_cast<size_t>(i)])] +=
          1.0;
    }
  }
  for (auto& row : dist) {
    for (double& v : row) v /= samples;
    URANK_DCHECK_NORMALIZED(row);
  }
  return dist;
}

std::vector<double> AttrTopKProbabilitiesMonteCarlo(const AttrRelation& rel,
                                                    int k, int samples,
                                                    Rng& rng,
                                                    TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<double> scores(static_cast<size_t>(n));
  std::vector<int> order(static_cast<size_t>(n));
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<double> hits(static_cast<size_t>(n), 0.0);
  for (int s = 0; s < samples; ++s) {
    SampleAttrWorld(rel, rng, &scores);
    RanksInAttrWorld(scores, ties, &order, &ranks);
    for (int i = 0; i < n; ++i) {
      if (ranks[static_cast<size_t>(i)] < k) hits[static_cast<size_t>(i)] += 1.0;
    }
  }
  for (double& v : hits) {
    v /= samples;
    URANK_DCHECK_PROB(v);
  }
  return hits;
}

std::vector<double> TupleTopKProbabilitiesMonteCarlo(
    const TupleRelation& rel, int k, int samples, Rng& rng, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(samples >= 1, "samples must be >= 1");
  const int n = rel.size();
  std::vector<bool> present(static_cast<size_t>(n));
  std::vector<int> appearing;
  std::vector<int> ranks(static_cast<size_t>(n));
  std::vector<double> hits(static_cast<size_t>(n), 0.0);
  for (int s = 0; s < samples; ++s) {
    SampleTupleWorld(rel, rng, &present);
    RanksInTupleWorld(rel, present, ties, &appearing, &ranks);
    for (int i = 0; i < n; ++i) {
      // Membership requires presence; an absent tuple's rank is |W| >= the
      // world's size, but small worlds could make it < k, so test presence
      // explicitly.
      if (present[static_cast<size_t>(i)] && ranks[static_cast<size_t>(i)] < k) {
        hits[static_cast<size_t>(i)] += 1.0;
      }
    }
  }
  for (double& v : hits) {
    v /= samples;
    URANK_DCHECK_PROB(v);
  }
  return hits;
}

}  // namespace urank
