// Median and quantile ranks (paper Section 7).
//
// The φ-quantile rank of a tuple is the smallest rank value whose
// cumulative probability in the tuple's rank distribution reaches φ
// (Definition 9); the median rank is the φ = 0.5 case. Ranking ascends by
// the quantile rank, with the library-wide id tie-break.
//
// Complexities follow the underlying rank-distribution DPs: O(s N³) for
// the attribute-level model and O(N M²) worst case (O(N M) typical, via
// incremental Poisson-binomial updates) for the tuple-level model.

#ifndef URANK_CORE_QUANTILE_RANK_H_
#define URANK_CORE_QUANTILE_RANK_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// Smallest index r with Σ_{c<=r} pmf[c] >= phi. Requires phi in (0, 1] and
// a non-empty pmf summing to ~1; returns the last index if round-off keeps
// the cdf below phi. The span form is the primary; the vector overload
// exists so braced-init call sites keep working.
int QuantileFromPmf(std::span<const double> pmf, double phi);
int QuantileFromPmf(const std::vector<double>& pmf, double phi);

// Descriptive statistics of one tuple's rank distribution — the objects
// Section 7 argues are "important statistics to characterize the rank
// distribution ... of independent interest".
struct RankDistributionSummary {
  double mean = 0.0;      // the expected rank
  double variance = 0.0;  // spread of the rank across worlds
  double stddev = 0.0;
  int median = 0;         // 0.5-quantile
  int q25 = 0;            // 0.25-quantile
  int q75 = 0;            // 0.75-quantile
  int mode = 0;           // most likely rank (smallest on ties)
  int min_rank = 0;       // smallest rank with positive probability
  int max_rank = 0;       // largest rank with positive probability
};

// Summarizes a rank pmf (as produced by AttrRankDistribution /
// TupleRankDistributions / the Monte Carlo estimators). Requires a
// non-empty pmf with non-negative entries summing to ~1.
RankDistributionSummary SummarizeRankDistribution(
    const std::vector<double>& pmf);

// φ-quantile ranks of every tuple, indexed by tuple position.
// Requires phi in (0, 1].
std::vector<int> AttrQuantileRanks(const AttrRelation& rel, double phi,
                                   TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleQuantileRanks(const TupleRelation& rel, double phi,
                                    TiePolicy ties = TiePolicy::kBreakByIndex);

// Median ranks (φ = 0.5).
std::vector<int> AttrMedianRanks(const AttrRelation& rel,
                                 TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleMedianRanks(const TupleRelation& rel,
                                  TiePolicy ties = TiePolicy::kBreakByIndex);

// Top-k by φ-quantile rank. Requires k >= 1 and phi in (0, 1]. The
// reported statistic is the quantile rank.
std::vector<RankedTuple> AttrQuantileRankTopK(
    const AttrRelation& rel, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<RankedTuple> TupleQuantileRankTopK(
    const TupleRelation& rel, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Prepared-state overloads: the attribute-level form reads the shared
// rank-distribution matrix, the tuple-level form sweeps the prepared rank
// order; both memoize the quantile-rank vector per (phi, ties) so the
// underlying DP runs once. Results are bit-identical to the one-shot
// forms. Requires phi in (0, 1] (and k >= 1 for the top-k forms).
std::vector<int> AttrQuantileRanks(const PreparedAttrRelation& prepared,
                                   double phi,
                                   TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleQuantileRanks(
    const PreparedTupleRelation& prepared, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Parallel-aware prepared forms: a cache miss runs the underlying DP with
// `par` worker slots (bit-identical results regardless) and Merge()s what
// the kernel did into `report` when non-null; a cache hit leaves `report`
// untouched. Requires phi in (0, 1].
std::vector<int> AttrQuantileRanks(const PreparedAttrRelation& prepared,
                                   double phi, TiePolicy ties,
                                   const ParallelismOptions& par,
                                   KernelReport* report);
std::vector<int> TupleQuantileRanks(const PreparedTupleRelation& prepared,
                                    double phi, TiePolicy ties,
                                    const ParallelismOptions& par,
                                    KernelReport* report);
std::vector<RankedTuple> AttrQuantileRankTopK(
    const PreparedAttrRelation& prepared, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<RankedTuple> TupleQuantileRankTopK(
    const PreparedTupleRelation& prepared, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// ---------------------------------------------------------------------------
// Pruned top-k by φ-quantile rank — the paper's A-ERank-Prune bounding
// discipline (Section 6) applied to the quantile DPs. Both kernels scan
// tuples in the prepared stream order, maintain the k best (quantile, id)
// pairs seen so far, and stop as soon as a sound lower bound proves every
// unscanned tuple's φ-quantile exceeds the current k-th best strictly —
// so the answer is *identical* (bit-for-bit, including the reported
// statistic and the (statistic asc, id asc) tie-break) to the unpruned
// TopK forms above, for every thread count, topology and placement.
//
// Tuple-level bound: after the sweep flushes positions [0, j) of the rank
// order, the count Y of flushed tuples that appear is Poisson-binomial
// over the per-rule prefix masses — the sweep's own state. Every
// unscanned tuple u (lower score) has rank(u) stochastically >= Y - 1 in
// both branches of Definition 7 (appearing: each flushed rule except
// rule(u)'s contributes independently; absent: rank = |W| >= Y). Hence
// Q_phi(rank(u)) >= Q_phi(Y) - 1, and when CDF_Y(kth + 1) < phi the
// quantile of every unscanned tuple is > kth. Cost per run boundary is
// O(kth), on state the sweep already carries.
//
// Attribute-level bound: with all support values >= 0 and e_last the
// expected score of the last scanned tuple (the stream descends by E[X]),
// Markov gives Pr[X_u > v] <= e_last / v for any unscanned u and v > 0;
// conditioned on X_u <= v, rank(u) dominates Y(v) = the Poisson binomial
// of Pr[X_j > v] over scanned tuples j. So Pr[rank(u) <= r] <=
// e_last / v + CDF_{Y(v)}(r); when that bound at r = kth stays below phi
// for any rung of a fixed geometric value ladder, no unscanned tuple can
// reach the top-k. The Y(v) pmfs are maintained incrementally, truncated
// at k + 64 with a lumped tail (exact below the truncation point, which
// is all the CDF test reads). Relations with negative support values get
// an empty ladder: the kernel degrades to a full scan, still exact.
// ---------------------------------------------------------------------------

struct PrunedTopKResult {
  std::vector<RankedTuple> topk;  // identical to the unpruned TopK answer
  long long tuples_scanned = 0;   // rank distributions actually computed
  // Stream position (into escore_order / rank_order) where the scan
  // stopped; N when the bound never fired and the scan ran out.
  long long prune_stop_position = 0;
};

// Requires k >= 1 and phi in (0, 1]. The attribute-level form computes
// each block's exact rank distributions with `par` worker slots (the
// bound bookkeeping and heap stay serial in stream order, so results are
// bit-identical regardless) and Merge()s kernel usage into `report` when
// non-null. The tuple-level form is a serial sweep of the same
// deterministic chunk grid as the unpruned kernel.
// Definitions (with the URANK_CHECKs) live in quantile_rank_prune.cc,
// not this header's sibling — hence the suppression:
// urank-lint: allow(precondition)
PrunedTopKResult AttrQuantileRankTopKPrune(
    const PreparedAttrRelation& prepared, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex,
    const ParallelismOptions& par = ParallelismOptions{},
    KernelReport* report = nullptr);
PrunedTopKResult TupleQuantileRankTopKPrune(
    const PreparedTupleRelation& prepared, int k, double phi,
    TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_QUANTILE_RANK_H_
