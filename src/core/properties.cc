#include "core/properties.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace urank {
namespace {

// Semantics that cannot fill a rank (U-kRanks) report -1 there; strip the
// placeholders so the size/containment checks see the actual answer set.
std::vector<int> RealIds(std::vector<int> ids) {
  ids.erase(std::remove(ids.begin(), ids.end(), -1), ids.end());
  return ids;
}

bool HasDuplicates(const std::vector<int>& ids) {
  std::unordered_set<int> seen;
  for (int id : ids) {
    if (!seen.insert(id).second) return true;
  }
  return false;
}

bool IsSubset(const std::vector<int>& small, const std::vector<int>& big) {
  std::unordered_set<int> sb(big.begin(), big.end());
  for (int id : small) {
    if (sb.count(id) == 0) return false;
  }
  return true;
}

// Multiset inclusion: every entry of `small` is matched by a distinct entry
// of `big`. Containment is checked on multisets because a definition like
// U-kRanks can legitimately report the same tuple at several ranks (it
// fails unique-ranking, not containment — paper Fig. 5).
bool IsMultisetSubset(const std::vector<int>& small,
                      const std::vector<int>& big) {
  std::unordered_map<int, int> counts;
  for (int id : big) ++counts[id];
  for (int id : small) {
    if (--counts[id] < 0) return false;
  }
  return true;
}

void Record(PropertyReport& report, const PropertyCheckOptions& options,
            const std::string& message) {
  if (report.violations.size() < options.max_violations) {
    report.violations.push_back(message);
  }
}

// The generic probe, instantiated for both models. `transforms` are the
// order-preserving score maps; `boost` strengthens the tuple with the given
// id (probabilistically larger, Definition 4) and `weaken` does the
// opposite; both return the perturbed relation.
template <typename Relation>
PropertyReport CheckProperties(
    const std::function<std::vector<int>(const Relation&, int)>& semantics,
    const Relation& rel, const std::vector<int>& all_ids,
    const PropertyCheckOptions& options,
    const std::vector<std::function<Relation(const Relation&)>>& transforms,
    const std::function<Relation(const Relation&, int, Rng&)>& boost,
    const std::function<Relation(const Relation&, int, Rng&)>& weaken) {
  PropertyReport report;
  const int n = static_cast<int>(all_ids.size());
  const int max_k = options.max_k > 0 ? options.max_k : std::min(n, 8);

  std::vector<std::vector<int>> answers;  // answers[k-1] = R_k (with -1s)
  for (int k = 1; k <= max_k; ++k) {
    answers.push_back(semantics(rel, k));
  }

  for (int k = 1; k <= max_k; ++k) {
    const std::vector<int> real = RealIds(answers[static_cast<size_t>(k - 1)]);
    if (n >= k && static_cast<int>(real.size()) != k) {
      report.exact_k = false;
      Record(report, options,
             "exact-k: |R_" + std::to_string(k) + "| = " +
                 std::to_string(real.size()));
    }
    if (HasDuplicates(real)) {
      report.unique_rank = false;
      Record(report, options,
             "unique-rank: duplicate id in R_" + std::to_string(k));
    }
  }

  for (int k = 1; k < max_k; ++k) {
    const std::vector<int> cur = RealIds(answers[static_cast<size_t>(k - 1)]);
    const std::vector<int> next = RealIds(answers[static_cast<size_t>(k)]);
    if (!IsMultisetSubset(cur, next)) {
      report.containment = false;
      report.weak_containment = false;
      Record(report, options,
             "containment: R_" + std::to_string(k) + " is not inside R_" +
                 std::to_string(k + 1));
    } else if (n > k && next.size() <= cur.size()) {
      // Subset but no growth: only the weak form holds.
      report.containment = false;
      Record(report, options,
             "containment: R_" + std::to_string(k + 1) +
                 " did not grow past R_" + std::to_string(k));
    }
  }

  for (size_t t = 0; t < transforms.size(); ++t) {
    const Relation transformed = transforms[t](rel);
    for (int k = 1; k <= max_k; ++k) {
      const std::vector<int> after = semantics(transformed, k);
      if (after != answers[static_cast<size_t>(k - 1)]) {
        report.value_invariance = false;
        Record(report, options,
               "value-invariance: transform " + std::to_string(t) +
                   " changed R_" + std::to_string(k));
      }
    }
  }

  Rng rng(options.seed);
  for (int trial = 0; max_k >= 1 && trial < options.stability_trials;
       ++trial) {
    const int k = static_cast<int>(rng.UniformInt(1, max_k));
    const std::vector<int> real = RealIds(answers[static_cast<size_t>(k - 1)]);
    if (!real.empty()) {
      const int id = real[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(real.size()) - 1))];
      const Relation boosted = boost(rel, id, rng);
      const std::vector<int> after = RealIds(semantics(boosted, k));
      if (!IsSubset({id}, after)) {
        report.stability = false;
        Record(report, options,
               "stability: boosting tuple " + std::to_string(id) +
                   " evicted it from R_" + std::to_string(k));
      }
    }
    // The converse direction: weakening a non-member must not promote it.
    std::unordered_set<int> members(real.begin(), real.end());
    std::vector<int> outsiders;
    for (int id : all_ids) {
      if (members.count(id) == 0) outsiders.push_back(id);
    }
    if (!outsiders.empty()) {
      const int id = outsiders[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(outsiders.size()) - 1))];
      const Relation weakened = weaken(rel, id, rng);
      const std::vector<int> after = RealIds(semantics(weakened, k));
      if (IsSubset({id}, after)) {
        report.stability = false;
        Record(report, options,
               "stability: weakening tuple " + std::to_string(id) +
                   " promoted it into R_" + std::to_string(k));
      }
    }
  }

  return report;
}

double MaxAbsScore(const AttrRelation& rel) {
  double m = 1.0;
  for (const AttrTuple& t : rel.tuples()) {
    for (const ScoreValue& sv : t.pdf) m = std::max(m, std::fabs(sv.value));
  }
  return m;
}

double MaxAbsScore(const TupleRelation& rel) {
  double m = 1.0;
  for (const TLTuple& t : rel.tuples()) m = std::max(m, std::fabs(t.score));
  return m;
}

template <typename Fn>
AttrRelation TransformAttr(const AttrRelation& rel, Fn&& fn) {
  std::vector<AttrTuple> tuples = rel.tuples();
  for (AttrTuple& t : tuples) {
    for (ScoreValue& sv : t.pdf) {
      URANK_CHECK_MSG(sv.value > 0.0,
                      "value-invariance transforms require positive scores");
      sv.value = fn(sv.value);
    }
  }
  return AttrRelation(std::move(tuples));
}

template <typename Fn>
TupleRelation TransformTuple(const TupleRelation& rel, Fn&& fn) {
  std::vector<TLTuple> tuples = rel.tuples();
  for (TLTuple& t : tuples) {
    URANK_CHECK_MSG(t.score > 0.0,
                    "value-invariance transforms require positive scores");
    t.score = fn(t.score);
  }
  return TupleRelation(std::move(tuples), rel.rules());
}

}  // namespace

AttrRelation TransformAttrScoresCubic(const AttrRelation& rel) {
  return TransformAttr(rel, [](double v) { return v * v * v; });
}

AttrRelation TransformAttrScoresLog(const AttrRelation& rel) {
  return TransformAttr(rel, [](double v) { return std::log1p(v); });
}

TupleRelation TransformTupleScoresCubic(const TupleRelation& rel) {
  return TransformTuple(rel, [](double v) { return v * v * v; });
}

TupleRelation TransformTupleScoresLog(const TupleRelation& rel) {
  return TransformTuple(rel, [](double v) { return std::log1p(v); });
}

PropertyReport CheckAttrProperties(const AttrSemanticsFn& semantics,
                                   const AttrRelation& rel,
                                   const PropertyCheckOptions& options) {
  const double shift_scale = MaxAbsScore(rel) * 0.1 + 1.0;
  // A uniform shift of very close support values can make them collide in
  // floating point; re-separate so the perturbed tuple stays a valid pdf.
  auto renudge = [](AttrTuple& t) {
    std::unordered_set<double> used;
    for (ScoreValue& sv : t.pdf) {
      while (!used.insert(sv.value).second) {
        sv.value += std::max(1e-9, std::fabs(sv.value) * 1e-9);
      }
    }
  };
  auto boost = [shift_scale, renudge](const AttrRelation& r, int id,
                                      Rng& rng) {
    // Shifting every support value upward gives X' stochastically >= X.
    const double delta = rng.Uniform(0.5, 1.0) * shift_scale;
    std::vector<AttrTuple> tuples = r.tuples();
    for (AttrTuple& t : tuples) {
      if (t.id != id) continue;
      for (ScoreValue& sv : t.pdf) sv.value += delta;
      renudge(t);
    }
    return AttrRelation(std::move(tuples));
  };
  auto weaken = [shift_scale, renudge](const AttrRelation& r, int id,
                                       Rng& rng) {
    const double delta = rng.Uniform(0.5, 1.0) * shift_scale;
    std::vector<AttrTuple> tuples = r.tuples();
    for (AttrTuple& t : tuples) {
      if (t.id != id) continue;
      for (ScoreValue& sv : t.pdf) sv.value -= delta;
      renudge(t);
    }
    return AttrRelation(std::move(tuples));
  };
  std::vector<int> all_ids;
  for (const AttrTuple& t : rel.tuples()) all_ids.push_back(t.id);
  return CheckProperties<AttrRelation>(
      semantics, rel, all_ids, options,
      {TransformAttrScoresCubic, TransformAttrScoresLog}, boost, weaken);
}

PropertyReport CheckTupleProperties(const TupleSemanticsFn& semantics,
                                    const TupleRelation& rel,
                                    const PropertyCheckOptions& options) {
  const double shift_scale = MaxAbsScore(rel) * 0.1 + 1.0;
  auto boost = [shift_scale](const TupleRelation& r, int id, Rng& rng) {
    // Raise the score and spend part of the rule's probability headroom:
    // (v', p') with v' >= v and p' >= p (Definition 4).
    const double delta = rng.Uniform(0.5, 1.0) * shift_scale;
    std::vector<TLTuple> tuples = r.tuples();
    for (int i = 0; i < r.size(); ++i) {
      TLTuple& t = tuples[static_cast<size_t>(i)];
      if (t.id != id) continue;
      t.score += delta;
      const double headroom =
          1.0 - r.rule_prob_sum(r.rule_of(i));
      if (headroom > 1e-9) {
        t.prob = std::min(1.0, t.prob + rng.Uniform01() * headroom);
      }
    }
    return TupleRelation(std::move(tuples), r.rules());
  };
  auto weaken = [shift_scale](const TupleRelation& r, int id, Rng& rng) {
    const double delta = rng.Uniform(0.5, 1.0) * shift_scale;
    std::vector<TLTuple> tuples = r.tuples();
    for (TLTuple& t : tuples) {
      if (t.id != id) continue;
      t.score -= delta;
      t.prob *= rng.Uniform(0.1, 1.0);
    }
    return TupleRelation(std::move(tuples), r.rules());
  };
  std::vector<int> all_ids;
  for (const TLTuple& t : rel.tuples()) all_ids.push_back(t.id);
  return CheckProperties<TupleRelation>(
      semantics, rel, all_ids, options,
      {TransformTupleScoresCubic, TransformTupleScoresLog}, boost, weaken);
}

}  // namespace urank
