// Sorted-access interfaces with access counting (paper Sections 5.2, 6.2).
//
// The pruning algorithms assume the relation is exposed through an
// interface that "generates each tuple in turn" in sorted order — by
// decreasing expected score for the attribute-level model and by decreasing
// score for the tuple-level model — and that each retrieval is expensive
// (e.g. an IO). These streams model that interface and count retrievals so
// the pruning experiments can report the number of tuples accessed.
//
// Building a stream sorts once up front; the sort is part of the data
// provider, not of the accesses being counted.

#ifndef URANK_CORE_ACCESS_H_
#define URANK_CORE_ACCESS_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// Streams an attribute-level relation in non-increasing E[X_i] order.
// Holds a pointer to `rel`, which must outlive the stream.
class SortedAttrStream {
 public:
  explicit SortedAttrStream(const AttrRelation& rel);

  bool HasNext() const { return next_ < order_.size(); }

  // Retrieves the next tuple and counts the access. Requires HasNext().
  const AttrTuple& Next();

  // Number of tuples retrieved so far.
  int accessed() const { return static_cast<int>(next_); }

  // Total number of tuples behind the stream (the paper's N, assumed known
  // to the pruning algorithm).
  int total() const { return static_cast<int>(order_.size()); }

 private:
  const AttrRelation* rel_;
  std::vector<int> order_;  // tuple indexes, sorted by expected score desc
  size_t next_ = 0;
};

// Streams a tuple-level relation in non-increasing score order. Exposes
// E[|W|], which the paper assumes is maintained alongside the relation.
class SortedTupleStream {
 public:
  explicit SortedTupleStream(const TupleRelation& rel);

  bool HasNext() const { return next_ < order_.size(); }

  // Retrieves the index (into the relation) of the next tuple and counts
  // the access. Requires HasNext(). Rule metadata of retrieved tuples may
  // be inspected through the relation, as the paper's algorithm does.
  int Next();

  int accessed() const { return static_cast<int>(next_); }
  int total() const { return static_cast<int>(order_.size()); }
  double expected_world_size() const { return expected_world_size_; }

 private:
  std::vector<int> order_;  // tuple indexes, sorted by score desc
  size_t next_ = 0;
  double expected_world_size_ = 0.0;
};

}  // namespace urank

#endif  // URANK_CORE_ACCESS_H_
