// Expected ranks in the tuple-level uncertainty model (paper Section 6).
//
// In a world where t_i appears, its rank is the number of appearing tuples
// ranked above it; in a world where it is absent, its rank is |W|
// (Definition 6). With tuples sorted by score the expected rank has the
// closed form of eq. (8):
//
//   r(t_i) = p_i (q_i − sameAbove_i) + S_i + (1 − p_i)(E|W| − p_i − S_i)
//
// where q_i is the probability mass of tuples ranked above t_i,
// sameAbove_i the above-mass within t_i's own exclusion rule, and S_i the
// rule's mass excluding t_i. Provided here:
//   * TupleExpectedRanksBruteForce — O(N²) direct evaluation (baseline);
//   * TupleExpectedRanks — T-ERank, O(N log N) (sort + prefix sums);
//   * TupleExpectedRankTopKPrune — T-ERank-Prune (Section 6.2): consumes a
//     score-sorted stream, computes each seen tuple's rank exactly, and
//     stops when the k-th best seen rank is at most the eq. (9) lower
//     bound for unseen tuples. Unlike the attribute-level pruning, the
//     returned top-k is guaranteed to be the true top-k.

#ifndef URANK_CORE_EXPECTED_RANK_TUPLE_H_
#define URANK_CORE_EXPECTED_RANK_TUPLE_H_

#include <vector>

#include "core/ranking.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

class PreparedTupleRelation;  // core/engine/prepared_relation.h

namespace internal {
struct TupleShardPlan;  // core/internal/shard_plan.h
}  // namespace internal

// O(N²) reference evaluation of the closed form, computing the mass sums
// pair by pair.
std::vector<double> TupleExpectedRanksBruteForce(
    const TupleRelation& rel, TiePolicy ties = TiePolicy::kStrictGreater);

// T-ERank: exact expected ranks for all tuples in O(N log N). Results are
// indexed by tuple position, like the relation.
std::vector<double> TupleExpectedRanks(
    const TupleRelation& rel, TiePolicy ties = TiePolicy::kStrictGreater);

// Exact top-k by expected rank. Ties broken by tuple id.
std::vector<RankedTuple> TupleExpectedRankTopK(
    const TupleRelation& rel, int k,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Prepared-state overloads: skip the per-call sort by sweeping the
// prepared rank order, and memoize the full rank vector in the prepared
// cache so repeated queries (any k) cost one computation. Results are
// bit-identical to the one-shot forms above.
std::vector<double> TupleExpectedRanks(
    const PreparedTupleRelation& prepared,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Requires k >= 1.
std::vector<RankedTuple> TupleExpectedRankTopK(
    const PreparedTupleRelation& prepared, int k,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Shard-parallel T-ERank over a prebuilt shard plan: each shard is swept
// locally from its precomputed entry state (prefix mass, per-rule masses),
// so shards run concurrently with no cross-shard reads. Bit-identical to
// the serial forms above for every thread count, placement policy, and
// shard count — the plan encodes the exact serial entry state.
std::vector<double> TupleExpectedRanksSharded(
    const TupleRelation& rel, const internal::TupleShardPlan& plan,
    TiePolicy ties, const ParallelismOptions& par,
    KernelReport* report = nullptr);

// Parallel prepared overloads: sweep the prepared relation's shard plan
// under `par` and memoize the (parallelism-independent) rank vector in the
// prepared cache. `report` receives threads/nodes used when the value was
// actually computed (a cache hit leaves it untouched).
std::vector<double> TupleExpectedRanks(const PreparedTupleRelation& prepared,
                                       TiePolicy ties,
                                       const ParallelismOptions& par,
                                       KernelReport* report = nullptr);
std::vector<RankedTuple> TupleExpectedRankTopK(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report = nullptr);

// Result of the pruned computation. `topk` is the exact top-k (the eq. (9)
// bound is sound, so pruning never changes the answer); `accessed` is the
// number of tuples retrieved from the sorted stream.
struct TuplePruneResult {
  std::vector<RankedTuple> topk;
  int accessed = 0;
};

// T-ERank-Prune. Requires k >= 1. The lower bound used for unseen tuples
// is the tie-safe refinement of eq. (9): mass of seen tuples scoring
// strictly above the last retrieved tuple, minus 1.
TuplePruneResult TupleExpectedRankTopKPrune(
    const TupleRelation& rel, int k,
    TiePolicy ties = TiePolicy::kStrictGreater);

}  // namespace urank

#endif  // URANK_CORE_EXPECTED_RANK_TUPLE_H_
