// Monte Carlo estimation over possible worlds (the generic approach the
// paper contrasts against, Section 2: "initial approaches are based on
// Monte-Carlo simulations [26], [34]").
//
// Worlds are sampled i.i.d. from the model's world distribution — one
// independent pdf draw per tuple in the attribute-level model, one
// independent choice per exclusion rule in the tuple-level model — and
// per-tuple rank statistics are averaged. Estimates converge to the exact
// values at the usual O(1/sqrt(samples)) rate; the estimators are used as
// (a) a scalable cross-check of the exact algorithms and (b) the baseline
// in the accuracy-vs-cost ablation (experiment E13).

#ifndef URANK_CORE_MONTE_CARLO_H_
#define URANK_CORE_MONTE_CARLO_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/rng.h"

namespace urank {

// Samples one world of an attribute-level relation: out[i] receives the
// value drawn for tuple index i. `out` must have size rel.size().
void SampleAttrWorld(const AttrRelation& rel, Rng& rng,
                     std::vector<double>* out);

// Samples one world of a tuple-level relation: out[i] tells whether tuple
// index i appears. `out` must have size rel.size().
void SampleTupleWorld(const TupleRelation& rel, Rng& rng,
                      std::vector<bool>* out);

// Estimated expected ranks from `samples` sampled worlds (Definition 8,
// including rank |W| for absent tuples in the tuple-level model).
// Requires samples >= 1. Cost O(samples · N log N).
std::vector<double> AttrExpectedRanksMonteCarlo(
    const AttrRelation& rel, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kStrictGreater);
std::vector<double> TupleExpectedRanksMonteCarlo(
    const TupleRelation& rel, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kStrictGreater);

// Estimated full rank distributions (Definition 7): result[i][r] is the
// fraction of sampled worlds in which t_i had rank r. Row sizes follow the
// exact counterparts (N for attribute-level, N+1 for tuple-level).
std::vector<std::vector<double>> AttrRankDistributionsMonteCarlo(
    const AttrRelation& rel, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<std::vector<double>> TupleRankDistributionsMonteCarlo(
    const TupleRelation& rel, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kBreakByIndex);

// Estimated top-k membership probabilities (presence required in the
// tuple-level model, as in PT-k / Global-Topk).
std::vector<double> AttrTopKProbabilitiesMonteCarlo(
    const AttrRelation& rel, int k, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<double> TupleTopKProbabilitiesMonteCarlo(
    const TupleRelation& rel, int k, int samples, Rng& rng,
    TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_MONTE_CARLO_H_
