// Common result types for ranking queries.

#ifndef URANK_CORE_RANKING_H_
#define URANK_CORE_RANKING_H_

#include <algorithm>
#include <vector>

namespace urank {

// One entry of a ranked answer: a tuple id together with the statistic the
// ranking was derived from (expected rank, median rank, top-k probability,
// ...). Lower `statistic` means better (earlier) rank for rank-based
// definitions; probability-based definitions negate so the convention holds
// throughout the library.
struct RankedTuple {
  int id = 0;
  double statistic = 0.0;

  friend bool operator==(const RankedTuple&, const RankedTuple&) = default;
};

// Orders (statistic ascending, id ascending) — the library-wide
// deterministic tie-break — and returns the first min(k, n) entries.
// `ids[i]` and `statistics[i]` describe one tuple; the two vectors must have
// equal length. Pass k < 0 for the full ranking.
inline std::vector<RankedTuple> TopKByStatistic(
    const std::vector<int>& ids, const std::vector<double>& statistics,
    int k) {
  std::vector<RankedTuple> all;
  all.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    all.push_back({ids[i], statistics[i]});
  }
  std::sort(all.begin(), all.end(),
            [](const RankedTuple& a, const RankedTuple& b) {
              if (a.statistic != b.statistic) return a.statistic < b.statistic;
              return a.id < b.id;
            });
  if (k >= 0 && static_cast<size_t>(k) < all.size()) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

// Extracts just the ids of a ranked answer, in rank order.
inline std::vector<int> IdsOf(const std::vector<RankedTuple>& ranked) {
  std::vector<int> ids;
  ids.reserve(ranked.size());
  for (const RankedTuple& rt : ranked) ids.push_back(rt.id);
  return ids;
}

}  // namespace urank

#endif  // URANK_CORE_RANKING_H_
