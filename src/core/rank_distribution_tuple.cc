#include "core/rank_distribution_tuple.h"

#include <algorithm>
#include <numeric>

#include "core/internal/kernel_arena.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"
#include "util/poisson_binomial.h"

namespace urank {
namespace {

constexpr double kProbEps = 1e-12;

using internal::AlignedBuf;

// PbConvolveTrial / PbDeconvolveTrial on arena-backed aligned buffers,
// dispatched through the active vector-kernel table. Preconditions are the
// kernel invariants (p in (0,1], non-empty pmf) already enforced upstream.
URANK_KERNEL void BufConvolveTrial(const vk::KernelOps& ops, AlignedBuf* pmf,
                                   double p) {
  const size_t n = pmf->size();
  pmf->resize(n + 1);
  ops.convolve_trial(pmf->data(), n, p);
}

URANK_KERNEL bool BufDeconvolveTrial(const vk::KernelOps& ops,
                                     const AlignedBuf& src, double p,
                                     AlignedBuf* out) {
  const size_t n = src.size() - 1;
  out->resize(n);
  return ops.deconvolve_trial(src.data(), n, p, out->data());
}

// Index order sorted by (score desc, index asc): the sweep order in which
// "already processed" means "ranked above" (exactly, under kBreakByIndex;
// up to the current equal-score run, under kStrictGreater).
std::vector<int> RankOrder(const TupleRelation& rel) {
  std::vector<int> order(static_cast<size_t>(rel.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

// Deterministic sweep grid: chunk start positions into `order`, aligned to
// equal-score run starts (a run must never straddle chunks — its members
// share one "ranked above" prefix), work-balanced by a per-position cost
// of 1 + (distinct rules touched so far), which tracks the Poisson-
// binomial support the sweep carries at that position. A pure function of
// the relation and tie policy — the thread count never enters, so every
// execution schedule solves the identical per-chunk subproblems.
std::vector<size_t> PlanChunkStarts(const TupleRelation& rel,
                                    const std::vector<int>& order,
                                    TiePolicy ties) {
  const size_t n = order.size();
  const int chunks = DeterministicChunkCount(static_cast<long long>(n));
  std::vector<size_t> starts(static_cast<size_t>(chunks) + 1, n);
  starts[0] = 0;
  if (chunks == 1) return starts;

  std::vector<unsigned char> touched(static_cast<size_t>(rel.num_rules()),
                                     0);
  std::vector<long long> cum(n + 1, 0);
  long long support = 0;
  for (size_t idx = 0; idx < n; ++idx) {
    // Integer chunk-cost recurrence for the deterministic chunk grid;
    // not a probability-array sweep.
    // urank-lint: allow(kernel-vectorize)
    cum[idx + 1] = cum[idx] + 1 + support;
    const size_t r = static_cast<size_t>(rel.rule_of(order[idx]));
    // urank-lint: allow(kernel-vectorize) — first-touch flag per rule.
    if (touched[r] == 0) {
      touched[r] = 1;
      ++support;
    }
  }
  const long long total = cum[n];
  int next = 1;
  for (size_t idx = 1; idx < n && next < chunks; ++idx) {
    const bool run_start =
        ties == TiePolicy::kBreakByIndex ||
        rel.tuple(order[idx]).score != rel.tuple(order[idx - 1]).score;
    if (!run_start) continue;
    while (next < chunks &&
           cum[idx] >= total * static_cast<long long>(next) / chunks) {
      starts[static_cast<size_t>(next)] = idx;
      ++next;
    }
  }
  return starts;
}

// Replays the rule prefix masses the sweep would carry entering position
// `begin` — exactly the update the chunk flush applies, so chunk-entry
// state is bit-identical to what an unchunked sweep would hold there.
URANK_KERNEL void ReplayPrefix(const TupleRelation& rel,
                               const std::vector<int>& order, size_t begin,
                               AlignedBuf* cur) {
  cur->assign(static_cast<size_t>(rel.num_rules()), 0.0);
  for (size_t idx = 0; idx < begin; ++idx) {
    const int i = order[idx];
    const size_t r = static_cast<size_t>(rel.rule_of(i));
    // urank-lint: allow(kernel-vectorize) — scatter keyed by rule index.
    (*cur)[r] = std::min((*cur)[r] + rel.tuple(i).prob, 1.0);
  }
}

// Chunk-local sweep state: per-rule prefix masses plus the flat Poisson
// binomial over their nonzero entries. All updates go through arena-backed
// aligned buffers — the per-tuple loop performs no heap allocation once
// the buffers reach their high-water size — and all pmf arithmetic goes
// through one vector-kernel table captured at sweep entry.
struct ChunkSweep {
  const TupleRelation& rel;
  const vk::KernelOps& ops;
  AlignedBuf& cur;      // per-rule mass ranked above the cursor
  AlignedBuf& pmf;      // Poisson binomial over nonzero cur[]
  AlignedBuf& scratch;  // deconvolution ping-pong target

  // Rebuilds a pmf from cur in canonical rule-index order, skipping
  // `skip_rule` (-1 for none). Depends only on the mass values, so the
  // deconvolution fallback stays deterministic under any schedule.
  URANK_KERNEL void Rebuild(AlignedBuf* out, int skip_rule) const {
    out->assign(1, 1.0);
    const int m = rel.num_rules();
    for (int r = 0; r < m; ++r) {
      if (r == skip_rule) continue;
      const double v = cur[static_cast<size_t>(r)];
      if (v > 0.0) BufConvolveTrial(ops, out, v);
    }
  }

  // The sweep pmf with rule r's current mass conditioned out; returns a
  // pointer to `pmf` itself when the rule carries no mass yet (no copy).
  URANK_KERNEL const AlignedBuf* WithoutRule(int r, AlignedBuf* out) const {
    const double v = cur[static_cast<size_t>(r)];
    if (v <= 0.0) return &pmf;
    if (!BufDeconvolveTrial(ops, pmf, v, out)) Rebuild(out, r);
    return out;
  }

  // Moves the tuple at position i into the "ranked above" prefix.
  URANK_KERNEL void Flush(int i) {
    const size_t r = static_cast<size_t>(rel.rule_of(i));
    const double old_mass = cur[r];
    if (old_mass > 0.0) {
      if (BufDeconvolveTrial(ops, pmf, old_mass, &scratch)) {
        pmf.swap(scratch);
      } else {
        Rebuild(&scratch, static_cast<int>(r));
        pmf.swap(scratch);
      }
    }
    // Rule mass stays a probability: Validate() bounds each rule's sum
    // by 1 + tolerance, and the sweep only ever adds member masses.
    URANK_DCHECK_PROB(old_mass + rel.tuple(i).prob);
    cur[r] = std::min(old_mass + rel.tuple(i).prob, 1.0);
    if (cur[r] > 0.0) BufConvolveTrial(ops, &pmf, cur[r]);
  }
};

// Sweeps chunk positions [begin, end) of `order`, invoking
// per_tuple(i, appear) with the appear-branch pmf (the tuple's own rule
// conditioned out). Equal-score runs flush only after every member was
// visited, matching the kStrictGreater semantics of the unchunked sweep.
// `entry_mass`, when non-null, is the precomputed per-rule prefix state at
// `begin` (num_rules doubles, the exact ReplayPrefix values) and replaces
// the O(begin) replay.
URANK_KERNEL void SweepAppearChunk(
    const TupleRelation& rel, const std::vector<int>& order, TiePolicy ties,
    size_t begin, size_t end, const double* entry_mass,
    internal::KernelArena* arena,
    const std::function<void(int, const AlignedBuf&)>& per_tuple) {
  const vk::KernelOps& ops = vk::Active();
  AlignedBuf& cur = arena->Doubles(0);
  AlignedBuf& pmf = arena->Doubles(1);
  AlignedBuf& scratch = arena->Doubles(2);
  AlignedBuf& appear = arena->Doubles(3);
  if (entry_mass != nullptr) {
    cur.assign(entry_mass, static_cast<size_t>(rel.num_rules()));
  } else {
    ReplayPrefix(rel, order, begin, &cur);
  }
  ChunkSweep sweep{rel, ops, cur, pmf, scratch};
  sweep.Rebuild(&pmf, -1);

  size_t pos = begin;
  while (pos < end) {
    size_t run_end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (run_end < end &&
             rel.tuple(order[run_end]).score ==
                 rel.tuple(order[pos]).score) {
        ++run_end;
      }
    }
    for (size_t idx = pos; idx < run_end; ++idx) {
      const int i = order[idx];
      per_tuple(i, *sweep.WithoutRule(rel.rule_of(i), &appear));
    }
    for (size_t idx = pos; idx < run_end; ++idx) sweep.Flush(order[idx]);
    pos = run_end;
  }
}

// Shared absent-branch state: the pristine world-size Poisson binomial
// over final rule masses. Built once, sequentially, in rule-index order;
// chunk workers only ever *read* pmf_all (deconvolving into their own
// arena buffers), so concurrent access needs no synchronization and the
// result cannot depend on tuple visit order — unlike the old serial
// mutate-and-undo pattern, whose float state carried its update history.
struct AbsentContext {
  std::vector<double> rule_sums;  // min(rule mass, 1) per rule
  std::vector<double> pmf_all;    // Poisson binomial over nonzero sums

  explicit AbsentContext(const TupleRelation& rel) {
    const int m = rel.num_rules();
    rule_sums.resize(static_cast<size_t>(m));
    pmf_all.assign(1, 1.0);
    for (int r = 0; r < m; ++r) {
      const double v = std::min(rel.rule_prob_sum(r), 1.0);
      rule_sums[static_cast<size_t>(r)] = v;
      if (v > 0.0) PbConvolveTrial(&pmf_all, v);
    }
  }

  // Writes into `out` the world-size pmf with rule r's unconditional mass
  // replaced by `cond` (its mass conditioned on the reference tuple being
  // absent). Reads shared state only.
  URANK_KERNEL void ConditionalWorldSize(const vk::KernelOps& ops, int r,
                                         double cond, AlignedBuf* out) const {
    const double v = rule_sums[static_cast<size_t>(r)];
    if (v > 0.0) {
      const size_t n = pmf_all.size() - 1;
      out->resize(n);
      if (!ops.deconvolve_trial(pmf_all.data(), n, v, out->data())) {
        // Deterministic fallback: rebuild the reduced product directly.
        out->assign(1, 1.0);
        for (size_t r2 = 0; r2 < rule_sums.size(); ++r2) {
          if (static_cast<int>(r2) == r) continue;
          if (rule_sums[r2] > 0.0) BufConvolveTrial(ops, out, rule_sums[r2]);
        }
      }
    } else {
      out->assign(pmf_all.data(), pmf_all.size());
    }
    if (cond > 0.0) BufConvolveTrial(ops, out, cond);
  }
};

KernelReport CollectReport(const ForRunInfo& info,
                           const std::vector<internal::KernelArena>& arenas) {
  KernelReport report;
  report.threads_used = info.participants;
  report.nodes_used = info.nodes_used;
  report.arena_bytes = 0;
  for (const internal::KernelArena& arena : arenas) {
    report.arena_bytes += arena.bytes();
  }
  return report;
}

// Entry-mass row for `chunk`, or null when no table was supplied.
const double* EntryRow(const TupleSweepEntryTable* entries, int chunk) {
  if (entries == nullptr || entries->num_rules == 0) return nullptr;
  return entries->entry_mass.data() +
         static_cast<size_t>(chunk) * static_cast<size_t>(entries->num_rules);
}

}  // namespace

TupleSweepEntryTable BuildTupleSweepEntryTable(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties) {
  TupleSweepEntryTable table;
  table.starts = PlanChunkStarts(rel, rank_order, ties);
  table.num_rules = rel.num_rules();
  const size_t chunks = table.starts.size() - 1;
  const size_t m = static_cast<size_t>(table.num_rules);
  table.entry_mass.assign(chunks * m, 0.0);
  // One sequential pass with the exact ReplayPrefix recurrence (min-clamped
  // additions in rank order), snapshotted at every chunk start: snapshot c
  // holds precisely the values ReplayPrefix(rel, order, starts[c]) would
  // compute, because it is the same operations in the same order.
  std::vector<double> cur(m, 0.0);
  size_t next = 0;
  for (size_t idx = 0; idx <= rank_order.size(); ++idx) {
    while (next < chunks && table.starts[next] == idx) {
      std::copy(cur.begin(), cur.end(),
                table.entry_mass.begin() + static_cast<long>(next * m));
      ++next;
    }
    if (idx == rank_order.size()) break;
    const int i = rank_order[idx];
    const size_t r = static_cast<size_t>(rel.rule_of(i));
    // urank-lint: allow(kernel-vectorize) — scatter keyed by rule index.
    cur[r] = std::min(cur[r] + rel.tuple(i).prob, 1.0);
  }
  return table;
}

int TupleSweepChunkCount(const TupleRelation& rel) {
  return DeterministicChunkCount(static_cast<long long>(rel.size()));
}

void ForEachTupleRankDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTupleRankDistribution(rel, RankOrder(rel), ties, fn);
}

void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  // Serial execution of the identical chunk grid: chunk 0, then chunk 1,
  // ... — the full sweep order, with results bit-identical to any thread
  // count.
  ForEachTupleRankDistribution(
      rel, rank_order, ties, ParallelismOptions{}, nullptr,
      [&fn](int /*chunk*/, int i, std::span<const double> dist) {
        fn(i, dist);
      });
}

URANK_KERNEL void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries) {
  const int n = rel.size();
  // The grid is identical either way (the table stores PlanChunkStarts's
  // output); reusing the table's copy just skips recomputing it.
  const std::vector<size_t> starts = entries != nullptr
                                         ? entries->starts
                                         : PlanChunkStarts(rel, rank_order,
                                                           ties);
  const int chunks = static_cast<int>(starts.size()) - 1;
  const AbsentContext absent(rel);
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::KernelArena> arenas(static_cast<size_t>(workers));

  const ForRunInfo used = ParallelForPlaced(
      chunks, workers, par.placement, [&](int chunk, int slot) {
    internal::KernelArena& arena = arenas[static_cast<size_t>(slot)];
    const vk::KernelOps& ops = vk::Active();
    // Acquire the highest slot first: a later Doubles() call with a larger
    // index would invalidate previously returned references.
    AlignedBuf& absent_buf = arena.Doubles(5);
    AlignedBuf& dist = arena.Doubles(4);
    dist.assign(static_cast<size_t>(n) + 1, 0.0);
    size_t dirty = 0;  // high-water mark of the nonzero prefix of dist
    SweepAppearChunk(
        rel, rank_order, ties, starts[static_cast<size_t>(chunk)],
        starts[static_cast<size_t>(chunk) + 1], EntryRow(entries, chunk),
        &arena, [&](int i, const AlignedBuf& appear) {
          const TLTuple& t = rel.tuple(i);
          const size_t na = appear.size();
          // Only [na, dirty) keeps stale mass: the appear-branch scale
          // overwrites [0, na) and everything at or beyond `dirty` is
          // still exactly zero.
          if (dirty > na) {
            std::fill(dist.begin() + static_cast<long>(na),
                      dist.begin() + static_cast<long>(dirty), 0.0);
          }
          ops.scale(dist.data(), appear.data(), t.prob, na);
          size_t hi = na;
          if (t.prob < 1.0 - kProbEps) {
            const int r = rel.rule_of(i);
            const double cond = std::clamp(
                (rel.rule_prob_sum(r) - t.prob) / (1.0 - t.prob), 0.0, 1.0);
            absent.ConditionalWorldSize(ops, r, cond, &absent_buf);
            ops.scale_add(dist.data(), absent_buf.data(), 1.0 - t.prob,
                          absent_buf.size());
            hi = std::max(hi, absent_buf.size());
          }
          dirty = hi;
          URANK_DCHECK_NORMALIZED(dist);
          fn(chunk, i, std::span<const double>(dist.data(), dist.size()));
        });
  });
  if (report != nullptr) report->Merge(CollectReport(used, arenas));
}

std::vector<std::vector<double>> TupleRankDistributions(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> dists(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTupleRankDistribution(
      rel, ties, [&](int i, std::span<const double> dist) {
        dists[static_cast<size_t>(i)].assign(dist.begin(), dist.end());
      });
  return dists;
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTuplePositionalDistribution(rel, RankOrder(rel), ties, fn);
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTuplePositionalDistribution(
      rel, rank_order, ties, ParallelismOptions{}, nullptr,
      [&fn](int /*chunk*/, int i, std::span<const double> row) {
        fn(i, row);
      });
}

URANK_KERNEL void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries) {
  const int n = rel.size();
  const std::vector<size_t> starts = entries != nullptr
                                         ? entries->starts
                                         : PlanChunkStarts(rel, rank_order,
                                                           ties);
  const int chunks = static_cast<int>(starts.size()) - 1;
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::KernelArena> arenas(static_cast<size_t>(workers));

  const ForRunInfo used = ParallelForPlaced(
      chunks, workers, par.placement, [&](int chunk, int slot) {
    internal::KernelArena& arena = arenas[static_cast<size_t>(slot)];
    const vk::KernelOps& ops = vk::Active();
    AlignedBuf& row = arena.Doubles(4);
    SweepAppearChunk(
        rel, rank_order, ties, starts[static_cast<size_t>(chunk)],
        starts[static_cast<size_t>(chunk) + 1], EntryRow(entries, chunk),
        &arena, [&](int i, const AlignedBuf& appear) {
          const double p = rel.tuple(i).prob;
          row.resize(appear.size());
          ops.scale(row.data(), appear.data(), p, appear.size());
          fn(chunk, i, std::span<const double>(row.data(), row.size()));
        });
  });
  if (report != nullptr) report->Merge(CollectReport(used, arenas));
}

std::vector<std::vector<double>> TuplePositionalProbabilities(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> pos(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTuplePositionalDistribution(
      rel, ties, [&](int i, std::span<const double> row) {
        std::copy(row.begin(), row.end(),
                  pos[static_cast<size_t>(i)].begin());
      });
  return pos;
}

}  // namespace urank
