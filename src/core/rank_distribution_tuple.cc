#include "core/rank_distribution_tuple.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/poisson_binomial.h"

namespace urank {
namespace {

constexpr double kProbEps = 1e-12;

// Index order sorted by (score desc, index asc): the sweep order in which
// "already processed" means "ranked above" (exactly, under kBreakByIndex;
// up to the current equal-score run, under kStrictGreater).
std::vector<int> RankOrder(const TupleRelation& rel) {
  std::vector<int> order(static_cast<size_t>(rel.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

// Sweeps tuples in rank order maintaining a Poisson-binomial over rules
// where rule r's trial probability is the mass of already-swept (i.e.
// higher-ranked) members of r. For each tuple, the appear-branch rank
// distribution is the sweep state with the tuple's own rule conditioned
// out (its members cannot appear together with the tuple).
//
// `order` must be the positions sorted by (score desc, index asc).
// Invokes `fn(index, appear_pmf)`; the pmf buffer is reused between calls.
void ForEachAppearBranch(
    const TupleRelation& rel, const std::vector<int>& order, TiePolicy ties,
    const std::function<void(int, const std::vector<double>&)>& fn) {
  const int m = rel.num_rules();
  std::vector<double> cur(static_cast<size_t>(m), 0.0);
  PoissonBinomial pb =
      PoissonBinomial::FromProbs(std::vector<double>(static_cast<size_t>(m), 0.0));

  size_t pos = 0;
  while (pos < order.size()) {
    size_t end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (end < order.size() &&
             rel.tuple(order[end]).score == rel.tuple(order[pos]).score) {
        ++end;
      }
    }
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = order[idx];
      const size_t r = static_cast<size_t>(rel.rule_of(i));
      pb.RemoveTrial(cur[r]);
      fn(i, pb.pmf());
      pb.AddTrial(cur[r]);
    }
    for (size_t idx = pos; idx < end; ++idx) {
      const int i = order[idx];
      const size_t r = static_cast<size_t>(rel.rule_of(i));
      pb.RemoveTrial(cur[r]);
      // Rule mass stays a probability: Validate() bounds each rule's sum
      // by 1 + tolerance, and the sweep only ever adds member masses.
      URANK_DCHECK_PROB(cur[r] + rel.tuple(i).prob);
      cur[r] = std::min(cur[r] + rel.tuple(i).prob, 1.0);
      pb.AddTrial(cur[r]);
    }
    pos = end;
  }
}

}  // namespace

void ForEachTupleRankDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, const std::vector<double>&)>& fn) {
  ForEachTupleRankDistribution(rel, RankOrder(rel), ties, fn);
}

void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, const std::vector<double>&)>& fn) {
  const int n = rel.size();
  const int m = rel.num_rules();
  // Absent branch: |W| given t_i absent is Poisson-binomial over rules,
  // with t_i's own rule contributing its remaining mass renormalized by
  // Pr[t_i absent].
  std::vector<double> rule_sums(static_cast<size_t>(m));
  for (int r = 0; r < m; ++r) {
    rule_sums[static_cast<size_t>(r)] = std::min(rel.rule_prob_sum(r), 1.0);
  }
  PoissonBinomial pb_all = PoissonBinomial::FromProbs(rule_sums);

  std::vector<double> dist(static_cast<size_t>(n) + 1, 0.0);
  ForEachAppearBranch(
      rel, rank_order, ties, [&](int i, const std::vector<double>& appear) {
        const TLTuple& t = rel.tuple(i);
        std::fill(dist.begin(), dist.end(), 0.0);
        for (size_t c = 0; c < appear.size(); ++c) {
          dist[c] += t.prob * appear[c];
        }
        if (t.prob < 1.0 - kProbEps) {
          const size_t r = static_cast<size_t>(rel.rule_of(i));
          const double cond = std::clamp(
              (rel.rule_prob_sum(static_cast<int>(r)) - t.prob) /
                  (1.0 - t.prob),
              0.0, 1.0);
          pb_all.RemoveTrial(rule_sums[r]);
          pb_all.AddTrial(cond);
          const std::vector<double>& absent = pb_all.pmf();
          for (size_t c = 0; c < absent.size(); ++c) {
            dist[c] += (1.0 - t.prob) * absent[c];
          }
          pb_all.RemoveTrial(cond);
          pb_all.AddTrial(rule_sums[r]);
        }
        URANK_DCHECK_NORMALIZED(dist);
        fn(i, dist);
      });
}

std::vector<std::vector<double>> TupleRankDistributions(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> dists(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTupleRankDistribution(
      rel, ties, [&](int i, const std::vector<double>& dist) {
        dists[static_cast<size_t>(i)] = dist;
      });
  return dists;
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, const std::vector<double>&)>& fn) {
  ForEachTuplePositionalDistribution(rel, RankOrder(rel), ties, fn);
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, const std::vector<double>&)>& fn) {
  std::vector<double> row;
  ForEachAppearBranch(rel, rank_order, ties,
                      [&](int i, const std::vector<double>& appear) {
                        const double p = rel.tuple(i).prob;
                        row.resize(appear.size());
                        for (size_t c = 0; c < appear.size(); ++c) {
                          row[c] = p * appear[c];
                        }
                        fn(i, row);
                      });
}

std::vector<std::vector<double>> TuplePositionalProbabilities(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> pos(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTuplePositionalDistribution(
      rel, ties, [&](int i, const std::vector<double>& row) {
        auto& out = pos[static_cast<size_t>(i)];
        for (size_t c = 0; c < row.size(); ++c) out[c] = row[c];
      });
  return pos;
}

}  // namespace urank
