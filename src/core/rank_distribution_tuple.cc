#include "core/rank_distribution_tuple.h"

#include <algorithm>
#include <numeric>

#include "core/internal/kernel_arena.h"
#include "core/internal/tuple_sweep.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {
namespace {

// The sweep primitives (rank order, chunk grid, prefix replay, incremental
// Poisson-binomial chunk sweep, absent-branch world-size state) live in
// core/internal/tuple_sweep.* so the pruned quantile kernels run the
// bit-identical machinery. This TU keeps only the per-tuple mixtures and
// the parallel dispatch.

constexpr double kProbEps = internal::kTupleSweepProbEps;

using internal::AlignedBuf;

KernelReport CollectReport(const ForRunInfo& info,
                           const std::vector<internal::KernelArena>& arenas) {
  KernelReport report;
  report.threads_used = info.participants;
  report.nodes_used = info.nodes_used;
  report.arena_bytes = 0;
  for (const internal::KernelArena& arena : arenas) {
    report.arena_bytes += arena.bytes();
  }
  return report;
}

}  // namespace

TupleSweepEntryTable BuildTupleSweepEntryTable(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties) {
  TupleSweepEntryTable table;
  table.starts = internal::PlanTupleChunkStarts(rel, rank_order, ties);
  table.num_rules = rel.num_rules();
  const size_t chunks = table.starts.size() - 1;
  const size_t m = static_cast<size_t>(table.num_rules);
  table.entry_mass.assign(chunks * m, 0.0);
  // One sequential pass with the exact ReplayTuplePrefix recurrence
  // (min-clamped additions in rank order), snapshotted at every chunk
  // start: snapshot c holds precisely the values
  // ReplayTuplePrefix(rel, order, starts[c]) would compute, because it is
  // the same operations in the same order.
  std::vector<double> cur(m, 0.0);
  size_t next = 0;
  for (size_t idx = 0; idx <= rank_order.size(); ++idx) {
    while (next < chunks && table.starts[next] == idx) {
      std::copy(cur.begin(), cur.end(),
                table.entry_mass.begin() + static_cast<long>(next * m));
      ++next;
    }
    if (idx == rank_order.size()) break;
    const int i = rank_order[idx];
    const size_t r = static_cast<size_t>(rel.rule_of(i));
    // urank-lint: allow(kernel-vectorize) — scatter keyed by rule index.
    cur[r] = std::min(cur[r] + rel.tuple(i).prob, 1.0);
  }
  return table;
}

int TupleSweepChunkCount(const TupleRelation& rel) {
  return DeterministicChunkCount(static_cast<long long>(rel.size()));
}

void ForEachTupleRankDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTupleRankDistribution(rel, internal::TupleRankOrder(rel), ties, fn);
}

void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  // Serial execution of the identical chunk grid: chunk 0, then chunk 1,
  // ... — the full sweep order, with results bit-identical to any thread
  // count.
  ForEachTupleRankDistribution(
      rel, rank_order, ties, ParallelismOptions{}, nullptr,
      [&fn](int /*chunk*/, int i, std::span<const double> dist) {
        fn(i, dist);
      });
}

URANK_KERNEL void ForEachTupleRankDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries) {
  const int n = rel.size();
  // The grid is identical either way (the table stores
  // PlanTupleChunkStarts's output); reusing the table's copy just skips
  // recomputing it.
  const std::vector<size_t> starts =
      entries != nullptr ? entries->starts
                         : internal::PlanTupleChunkStarts(rel, rank_order,
                                                          ties);
  const int chunks = static_cast<int>(starts.size()) - 1;
  const internal::AbsentContext absent(rel);
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::KernelArena> arenas(static_cast<size_t>(workers));

  const ForRunInfo used = ParallelForPlaced(
      chunks, workers, par.placement, [&](int chunk, int slot) {
    internal::KernelArena& arena = arenas[static_cast<size_t>(slot)];
    const vk::KernelOps& ops = vk::Active();
    // Acquire the highest slot first: a later Doubles() call with a larger
    // index would invalidate previously returned references.
    AlignedBuf& absent_buf = arena.Doubles(5);
    AlignedBuf& dist = arena.Doubles(4);
    dist.assign(static_cast<size_t>(n) + 1, 0.0);
    size_t dirty = 0;  // high-water mark of the nonzero prefix of dist
    internal::SweepAppearChunk(
        rel, rank_order, ties, starts[static_cast<size_t>(chunk)],
        starts[static_cast<size_t>(chunk) + 1],
        internal::TupleSweepEntryRow(entries, chunk), &arena,
        [&](int i, const AlignedBuf& appear) {
          const TLTuple& t = rel.tuple(i);
          const size_t na = appear.size();
          // Only [na, dirty) keeps stale mass: the appear-branch scale
          // overwrites [0, na) and everything at or beyond `dirty` is
          // still exactly zero.
          if (dirty > na) {
            std::fill(dist.begin() + static_cast<long>(na),
                      dist.begin() + static_cast<long>(dirty), 0.0);
          }
          ops.scale(dist.data(), appear.data(), t.prob, na);
          size_t hi = na;
          if (t.prob < 1.0 - kProbEps) {
            const int r = rel.rule_of(i);
            const double cond = std::clamp(
                (rel.rule_prob_sum(r) - t.prob) / (1.0 - t.prob), 0.0, 1.0);
            absent.ConditionalWorldSize(ops, r, cond, &absent_buf);
            ops.scale_add(dist.data(), absent_buf.data(), 1.0 - t.prob,
                          absent_buf.size());
            hi = std::max(hi, absent_buf.size());
          }
          dirty = hi;
          URANK_DCHECK_NORMALIZED(dist);
          fn(chunk, i, std::span<const double>(dist.data(), dist.size()));
        });
  });
  if (report != nullptr) report->Merge(CollectReport(used, arenas));
}

std::vector<std::vector<double>> TupleRankDistributions(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> dists(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTupleRankDistribution(
      rel, ties, [&](int i, std::span<const double> dist) {
        dists[static_cast<size_t>(i)].assign(dist.begin(), dist.end());
      });
  return dists;
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTuplePositionalDistribution(rel, internal::TupleRankOrder(rel), ties,
                                     fn);
}

void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties,
    const std::function<void(int, std::span<const double>)>& fn) {
  ForEachTuplePositionalDistribution(
      rel, rank_order, ties, ParallelismOptions{}, nullptr,
      [&fn](int /*chunk*/, int i, std::span<const double> row) {
        fn(i, row);
      });
}

URANK_KERNEL void ForEachTuplePositionalDistribution(
    const TupleRelation& rel, const std::vector<int>& rank_order,
    TiePolicy ties, const ParallelismOptions& par, KernelReport* report,
    const std::function<void(int, int, std::span<const double>)>& fn,
    const TupleSweepEntryTable* entries) {
  const int n = rel.size();
  const std::vector<size_t> starts =
      entries != nullptr ? entries->starts
                         : internal::PlanTupleChunkStarts(rel, rank_order,
                                                          ties);
  const int chunks = static_cast<int>(starts.size()) - 1;
  const int workers = PlannedWorkers(par, n);
  std::vector<internal::KernelArena> arenas(static_cast<size_t>(workers));

  const ForRunInfo used = ParallelForPlaced(
      chunks, workers, par.placement, [&](int chunk, int slot) {
    internal::KernelArena& arena = arenas[static_cast<size_t>(slot)];
    const vk::KernelOps& ops = vk::Active();
    AlignedBuf& row = arena.Doubles(4);
    internal::SweepAppearChunk(
        rel, rank_order, ties, starts[static_cast<size_t>(chunk)],
        starts[static_cast<size_t>(chunk) + 1],
        internal::TupleSweepEntryRow(entries, chunk), &arena,
        [&](int i, const AlignedBuf& appear) {
          const double p = rel.tuple(i).prob;
          row.resize(appear.size());
          ops.scale(row.data(), appear.data(), p, appear.size());
          fn(chunk, i, std::span<const double>(row.data(), row.size()));
        });
  });
  if (report != nullptr) report->Merge(CollectReport(used, arenas));
}

std::vector<std::vector<double>> TuplePositionalProbabilities(
    const TupleRelation& rel, TiePolicy ties) {
  std::vector<std::vector<double>> pos(
      static_cast<size_t>(rel.size()),
      std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
  ForEachTuplePositionalDistribution(
      rel, ties, [&](int i, std::span<const double> row) {
        std::copy(row.begin(), row.end(),
                  pos[static_cast<size_t>(i)].begin());
      });
  return pos;
}

}  // namespace urank
