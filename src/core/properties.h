// Machine checkers for the five ranking-query properties of paper
// Section 4.1: exact-k, containment, unique ranking, value invariance and
// stability.
//
// A ranking definition under test is abstracted as a callback producing the
// top-k id list (or set) for a relation and a k. The checkers probe the
// definition on a given relation across a range of k values, on
// order-preserving score transformations, and on randomized stability
// perturbations, and report which properties held. They are used by the
// test suite (expected/median/quantile ranks must pass everything;
// baselines must fail exactly the paper's Fig. 5 entries) and by the
// bench_properties harness that regenerates the Fig. 5 matrix empirically.

#ifndef URANK_CORE_PROPERTIES_H_
#define URANK_CORE_PROPERTIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// A ranking semantics under test: returns the top-k answer as tuple ids.
using AttrSemanticsFn =
    std::function<std::vector<int>(const AttrRelation&, int)>;
using TupleSemanticsFn =
    std::function<std::vector<int>(const TupleRelation&, int)>;

// Outcome of a property probe. A property is reported as holding when no
// violation was observed on any probe; `violations` carries a description
// of the first few violations for diagnostics.
struct PropertyReport {
  bool exact_k = true;
  bool containment = true;       // strong: R_k ⊊ R_{k+1}
  bool weak_containment = true;  // R_k ⊆ R_{k+1}
  bool unique_rank = true;
  bool value_invariance = true;
  bool stability = true;

  std::vector<std::string> violations;

  // True when all five headline properties (strong containment) held.
  bool AllHold() const {
    return exact_k && containment && unique_rank && value_invariance &&
           stability;
  }
};

// Probe configuration.
struct PropertyCheckOptions {
  int max_k = 0;             // probe k = 1..max_k; 0 means min(N, 8)
  int stability_trials = 8;  // randomized stability perturbations
  uint64_t seed = 42;        // seed for the stability perturbations
  size_t max_violations = 8;  // cap on recorded diagnostics
};

// Probes `semantics` on `rel`. The relation's scores must be strictly
// positive (the value-invariance transform uses a non-affine monotone map
// on positive values).
PropertyReport CheckAttrProperties(const AttrSemanticsFn& semantics,
                                   const AttrRelation& rel,
                                   const PropertyCheckOptions& options = {});
PropertyReport CheckTupleProperties(const TupleSemanticsFn& semantics,
                                    const TupleRelation& rel,
                                    const PropertyCheckOptions& options = {});

// The order-preserving, non-affine score transforms used by the
// value-invariance probe (exposed for tests): v -> v^3 and
// v -> log(1 + v). Both require v > 0.
AttrRelation TransformAttrScoresCubic(const AttrRelation& rel);
AttrRelation TransformAttrScoresLog(const AttrRelation& rel);
TupleRelation TransformTupleScoresCubic(const TupleRelation& rel);
TupleRelation TransformTupleScoresLog(const TupleRelation& rel);

}  // namespace urank

#endif  // URANK_CORE_PROPERTIES_H_
