// Portable scalar reference implementations and the runtime dispatch table.
// The scalar primitives reproduce the pre-vectorization kernel arithmetic
// operation for operation (same expressions, same evaluation order), so the
// kScalar target is bit-identical to the historical serial code.

#include "core/internal/vector_kernels.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {
namespace vk {
namespace detail {

URANK_KERNEL
void ScalarConvolveTrial(double* v, std::size_t n, double p) {
  const double q = 1.0 - p;
  // Convolve with the two-point distribution {1-p, p}, in place, high to
  // low; the top coefficient has no surviving v[n] term.
  v[n] = v[n - 1] * p;
  for (std::size_t c = n - 1; c > 0; --c) {
    v[c] = v[c] * q + v[c - 1] * p;
  }
  v[0] *= q;
}

bool DeconvolveChecksPass(const double* src, std::size_t n, double p,
                          double* out) {
  const double q = 1.0 - p;
  const bool forward = p <= 0.5;
  // The recurrence multiplier is never zero, so a non-finite value anywhere
  // propagates to the last element written; one check covers the vector.
  if (!std::isfinite(out[forward ? n - 1 : 0])) return false;
  // Consistency against the src boundary coefficient the division skipped.
  const double got = forward ? out[n - 1] * p : out[0] * q;
  const double ref = forward ? src[n] : src[0];
  if (std::fabs(got - ref) >
      kDeconvTolerance + kDeconvTolerance * std::fabs(ref)) {
    return false;
  }
  // Negative dips beyond round-off also signal cancellation.
  for (std::size_t c = 0; c < n; ++c) {
    if (out[c] < -1e-9) return false;
  }
  for (std::size_t c = 0; c < n; ++c) out[c] = std::max(out[c], 0.0);
  return true;
}

URANK_KERNEL
bool ScalarDeconvolveTrial(const double* src, std::size_t n, double p,
                           double* out) {
  const double q = 1.0 - p;
  if (p <= 0.5) {
    // src[c] = out[c]*(1-p) + out[c-1]*p  =>  solve forward by (1-p).
    double carry = 0.0;  // out[c-1]
    for (std::size_t c = 0; c < n; ++c) {
      const double v = (src[c] - carry * p) / q;
      out[c] = v;
      carry = v;
    }
  } else {
    // Solve backward by p: src[c] = out[c]*(1-p) + out[c-1]*p.
    double carry = 0.0;  // out[c]
    for (std::size_t c = n; c > 0; --c) {
      const double v = (src[c] - carry * q) / p;
      out[c - 1] = v;
      carry = v;
    }
  }
  return DeconvolveChecksPass(src, n, p, out);
}

URANK_KERNEL
void ScalarPrefixSum(double* v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    acc += v[c];
    v[c] = acc;
  }
}

URANK_KERNEL
void ScalarSuffixSum(const double* mass, double* suffix, std::size_t n) {
  suffix[n] = 0.0;
  for (std::size_t l = n; l > 0; --l) {
    suffix[l - 1] = suffix[l] + mass[l - 1];
  }
}

URANK_KERNEL
double ScalarSum(const double* v, std::size_t n) {
  double sum = 0.0;
  for (std::size_t c = 0; c < n; ++c) sum += v[c];
  return sum;
}

URANK_KERNEL
void ScalarScale(double* out, const double* in, double a, std::size_t n) {
  for (std::size_t c = 0; c < n; ++c) out[c] = a * in[c];
}

URANK_KERNEL
void ScalarScaleAdd(double* out, const double* in, double a, std::size_t n) {
  for (std::size_t c = 0; c < n; ++c) out[c] += a * in[c];
}

URANK_KERNEL
void ScalarArgmaxMerge(const double* row, int id, double* best, int* winner,
                       std::size_t n) {
  for (std::size_t c = 0; c < n; ++c) {
    if (row[c] > best[c] ||
        (row[c] == best[c] && row[c] > 0.0 && winner[c] >= 0 &&
         id < winner[c])) {
      best[c] = row[c];
      winner[c] = id;
    }
  }
}

}  // namespace detail

namespace {

constexpr KernelOps kScalarOps = {
    &detail::ScalarConvolveTrial, &detail::ScalarDeconvolveTrial,
    &detail::ScalarPrefixSum,     &detail::ScalarSuffixSum,
    &detail::ScalarSum,           &detail::ScalarScale,
    &detail::ScalarScaleAdd,      &detail::ScalarArgmaxMerge,
};

}  // namespace

const KernelOps& ForTarget(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return kScalarOps;
    case SimdTarget::kNeon:
#if defined(URANK_HAVE_NEON)
      return NeonOps();
#else
      break;
#endif
    case SimdTarget::kAvx2:
#if defined(URANK_HAVE_AVX2)
      return Avx2Ops();
#else
      break;
#endif
    case SimdTarget::kAvx512:
#if defined(URANK_HAVE_AVX512)
      return Avx512Ops();
#else
      break;
#endif
  }
  URANK_CHECK_MSG(false,
                  "vector kernels: dispatch target not compiled into this "
                  "binary (guard with SimdTargetAvailable)");
  return kScalarOps;  // unreachable; URANK_CHECK aborts
}

const KernelOps& Active() { return ForTarget(ActiveSimdTarget()); }

}  // namespace vk
}  // namespace urank
