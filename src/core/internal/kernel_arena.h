// Internal helper: per-worker scratch storage for the parallel DP kernels.
// Not part of the public API.
//
// Each worker slot of a ParallelFor owns one KernelArena. Kernels acquire
// named buffers once per chunk and reuse them across every tuple in the
// chunk, so the per-tuple inner loops perform no heap allocation — the
// buffers grow monotonically to the high-water mark and stay there for the
// lifetime of the kernel call. bytes() reports that high-water footprint
// for QueryStats.
//
// Buffers are AlignedBuf, not std::vector: every block is 64-byte aligned
// (one cache line, the widest vector register) so the SIMD kernels in
// vector_kernels.h run on aligned, structure-of-arrays scratch. AlignedBuf
// deliberately leaves grown elements uninitialized — every kernel writes a
// buffer before reading it, and the DP sweeps resize in the hot loop.

#ifndef URANK_CORE_INTERNAL_KERNEL_ARENA_H_
#define URANK_CORE_INTERNAL_KERNEL_ARENA_H_

#include <cstdint>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include "util/check.h"

namespace urank {
namespace internal {

// A growable array of doubles whose storage is 64-byte aligned. The subset
// of the std::vector interface the kernels use, with one semantic change:
// resize() never initializes grown elements. Contents survive resize up to
// min(old size, new size), like std::vector.
class AlignedBuf {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuf() = default;
  AlignedBuf(AlignedBuf&& other) noexcept { swap(other); }
  AlignedBuf& operator=(AlignedBuf&& other) noexcept {
    swap(other);
    return *this;
  }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;
  ~AlignedBuf() { Free(); }

  double* data() { return data_; }
  const double* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

  double* begin() { return data_; }
  double* end() { return data_ + size_; }
  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

  void reserve(std::size_t n) {
    if (n <= cap_) return;
    Grow(n, /*preserve=*/size_);
  }

  // Grown elements are uninitialized (kernels write before reading).
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void assign(std::size_t n, double value) {
    if (n > cap_) Grow(n, /*preserve=*/0);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data_[i] = value;
  }

  void assign(const double* src, std::size_t n) {
    if (n > cap_) Grow(n, /*preserve=*/0);
    size_ = n;
    if (n > 0) std::memcpy(data_, src, n * sizeof(double));
  }

  void push_back(double value) {
    if (size_ == cap_) Grow(size_ + 1, /*preserve=*/size_);
    data_[size_++] = value;
  }

  void swap(AlignedBuf& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(cap_, other.cap_);
  }

 private:
  void Grow(std::size_t n, std::size_t preserve) {
    std::size_t cap = cap_ == 0 ? 64 : cap_;
    while (cap < n) cap *= 2;
    double* fresh = static_cast<double*>(::operator new[](
        cap * sizeof(double), std::align_val_t(kAlignment)));
    if (preserve > 0) std::memcpy(fresh, data_, preserve * sizeof(double));
    Free();
    data_ = fresh;
    cap_ = cap;
  }

  void Free() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t(kAlignment));
      data_ = nullptr;
    }
  }

  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

class KernelArena {
 public:
  // The double buffer for slot `which` (a small dense index the kernel
  // assigns meaning to: DP row A, DP row B, prefix masses, ...). The
  // buffer keeps whatever size/contents the previous use left; callers
  // resize or assign as needed. The reference stays valid until the next
  // Doubles call with a larger `which`.
  AlignedBuf& Doubles(int which) {
    if (static_cast<size_t>(which) >= doubles_.size()) {
      doubles_.resize(static_cast<size_t>(which) + 1);
    }
    AlignedBuf& buf = doubles_[static_cast<size_t>(which)];
    URANK_DCHECK_MSG(
        buf.data() == nullptr ||
            reinterpret_cast<std::uintptr_t>(buf.data()) %
                    AlignedBuf::kAlignment ==
                0,
        "KernelArena buffer is not 64-byte aligned");
    return buf;
  }

  // Heap bytes currently reserved across all buffers.
  std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const auto& buf : doubles_) {
      total += static_cast<std::uint64_t>(buf.capacity()) * sizeof(double);
    }
    return total;
  }

 private:
  std::vector<AlignedBuf> doubles_;
};

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_KERNEL_ARENA_H_
