// Internal helper: per-worker scratch storage for the parallel DP kernels.
// Not part of the public API.
//
// Each worker slot of a ParallelFor owns one KernelArena. Kernels acquire
// named buffers once per chunk and reuse them across every tuple in the
// chunk, so the per-tuple inner loops perform no heap allocation — the
// buffers grow monotonically to the high-water mark and stay there for the
// lifetime of the kernel call. bytes() reports that high-water footprint
// for QueryStats.

#ifndef URANK_CORE_INTERNAL_KERNEL_ARENA_H_
#define URANK_CORE_INTERNAL_KERNEL_ARENA_H_

#include <cstdint>
#include <vector>

namespace urank {
namespace internal {

class KernelArena {
 public:
  // The double buffer for slot `which` (a small dense index the kernel
  // assigns meaning to: DP row A, DP row B, prefix masses, ...). The
  // buffer keeps whatever size/contents the previous use left; callers
  // resize or assign as needed. The reference stays valid until the next
  // Doubles call with a larger `which`.
  std::vector<double>& Doubles(int which) {
    if (static_cast<size_t>(which) >= doubles_.size()) {
      doubles_.resize(static_cast<size_t>(which) + 1);
    }
    return doubles_[static_cast<size_t>(which)];
  }

  // Heap bytes currently reserved across all buffers.
  std::uint64_t bytes() const {
    std::uint64_t total = 0;
    for (const auto& buf : doubles_) {
      total += static_cast<std::uint64_t>(buf.capacity()) * sizeof(double);
    }
    return total;
  }

 private:
  std::vector<std::vector<double>> doubles_;
};

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_KERNEL_ARENA_H_
