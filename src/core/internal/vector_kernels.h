// Vectorized, cache-blocked probability primitives behind the DP kernels.
// Not part of the public API.
//
// Every inner loop of the hot kernels — Poisson-binomial shift-add
// convolution and deconvolution, prefix/suffix probability sums, the tuple
// rank-distribution positional sweep's scale / scale-add passes, the
// U-kRanks per-rank argmax fold, and the quantile / top-k cdf reductions —
// is expressed against the function table below instead of a raw loop
// (the `kernel-vectorize` rule in tools/urank_lint.py enforces this).
// Each primitive has one portable scalar implementation (the reference
// semantics) plus SIMD translation units compiled per instruction set
// (vector_kernels_avx2.cc, vector_kernels_avx512.cc, vector_kernels_
// neon.cc); the table actually dispatched to is selected at runtime by
// util/simd.h.
//
// Exactness taxonomy (see docs/PERFORMANCE.md, "SIMD dispatch and
// determinism"):
//   * Elementwise primitives — convolve_trial, scale, scale_add,
//     argmax_merge — perform exactly the scalar reference's one rounding
//     per multiply and add, in the same per-element expression, so their
//     results are bit-identical across dispatch targets (no FMA
//     contraction is used on any target).
//   * Reassociated primitives — prefix_sum, suffix_sum, sum, and the
//     vectorized deconvolve_trial recurrence — change the association of
//     floating-point additions and therefore match the scalar reference
//     only within 1e-12 relative error at distribution scale
//     (tests/core/vector_kernel_identity_test.cc enforces the bound for
//     every compiled target).
// For a FIXED target, every primitive is a pure function of its inputs:
// kernels stay bit-identical across thread counts and repeated runs.
//
// All pointers are to double and need no particular alignment (the SIMD
// implementations use unaligned loads); the KernelArena hands out 64-byte
// aligned buffers so steady-state kernel traffic is aligned anyway.

#ifndef URANK_CORE_INTERNAL_VECTOR_KERNELS_H_
#define URANK_CORE_INTERNAL_VECTOR_KERNELS_H_

#include <cstddef>

#include "util/simd.h"

namespace urank {
namespace vk {

// One dispatch target's implementations. Semantics (shared by every
// target; n is an element count, all regions may not overlap unless the
// primitive is documented in-place):
//
//   convolve_trial(v, n, p)
//     In-place convolution of the pmf v[0..n-1] with the two-point
//     distribution {1-p, p}: afterwards v[0..n] holds the convolved pmf
//     (v must have room for n+1 entries; v[n] is written, not read).
//     new v[c] = v[c]*(1-p) + v[c-1]*p, evaluated high to low.
//     Requires n >= 1 and p in (0, 1].
//
//   deconvolve_trial(src, n, p, out) -> ok
//     Divides one {1-p, p} factor out of src[0..n] (a pmf over n trials),
//     writing the reduced pmf to out[0..n-1]. Chooses the numerically
//     stable direction for p, verifies the result (finite, consistent
//     with the src boundary coefficient, no negative dips beyond 1e-9)
//     and clamps round-off negatives to 0. Returns false — out contents
//     unspecified — when cancellation is detected; the caller rebuilds
//     the reduced pmf from its factor list. src and out must not overlap.
//     Requires n >= 1 and p in (0, 1].
//
//   prefix_sum(v, n)
//     In-place inclusive prefix sum: v[c] = v[0] + ... + v[c].
//
//   suffix_sum(mass, suffix, n)
//     suffix[l] = mass[l] + ... + mass[n-1], with suffix[n] = 0
//     (suffix has n+1 entries).
//
//   sum(v, n) -> total
//     Sum of v[0..n-1]; 0.0 for n == 0.
//
//   scale(out, in, a, n)
//     out[c] = a * in[c].
//
//   scale_add(out, in, a, n)
//     out[c] += a * in[c], one multiply and one add per element.
//
//   argmax_merge(row, id, best, winner, n)
//     Per-rank argmax fold with the U-kRanks tie rule: for each c, the
//     candidate (row[c], id) replaces (best[c], winner[c]) when row[c] is
//     strictly greater, or equal-and-positive with a smaller id than a
//     live winner. Elementwise comparisons only — bit-identical across
//     targets.
struct KernelOps {
  void (*convolve_trial)(double* v, std::size_t n, double p);
  bool (*deconvolve_trial)(const double* src, std::size_t n, double p,
                           double* out);
  void (*prefix_sum)(double* v, std::size_t n);
  void (*suffix_sum)(const double* mass, double* suffix, std::size_t n);
  double (*sum)(const double* v, std::size_t n);
  void (*scale)(double* out, const double* in, double a, std::size_t n);
  void (*scale_add)(double* out, const double* in, double a, std::size_t n);
  void (*argmax_merge)(const double* row, int id, double* best, int* winner,
                       std::size_t n);
};

// The table for the currently active dispatch target
// (urank::ActiveSimdTarget()). Cheap: one atomic load plus an index.
const KernelOps& Active();

// The table for a specific target — the cross-dispatch identity test runs
// every compiled target against kScalar. Aborts if `target` is not
// available on this machine (guard with SimdTargetAvailable).
const KernelOps& ForTarget(SimdTarget target);

// Relative error beyond which deconvolve_trial reports cancellation; the
// check is tol + tol*|reference| against the untouched src boundary
// coefficient, plus a -1e-9 negative-dip bound. Shared by every target.
inline constexpr double kDeconvTolerance = 1e-9;

// Per-target tables, each defined in its own translation unit and compiled
// only when the toolchain supports the instruction set (src/CMakeLists.txt
// probes the flags). Referencing one that is not compiled in is a link
// error; go through ForTarget().
const KernelOps& Avx2Ops();    // vector_kernels_avx2.cc
const KernelOps& Avx512Ops();  // vector_kernels_avx512.cc
const KernelOps& NeonOps();    // vector_kernels_neon.cc

namespace detail {

// Portable reference implementations backing the kScalar table. The SIMD
// translation units tail-call these for remainder elements and for
// primitives a target does not reimplement.
void ScalarConvolveTrial(double* v, std::size_t n, double p);
bool ScalarDeconvolveTrial(const double* src, std::size_t n, double p,
                           double* out);
void ScalarPrefixSum(double* v, std::size_t n);
void ScalarSuffixSum(const double* mass, double* suffix, std::size_t n);
double ScalarSum(const double* v, std::size_t n);
void ScalarScale(double* out, const double* in, double a, std::size_t n);
void ScalarScaleAdd(double* out, const double* in, double a, std::size_t n);
void ScalarArgmaxMerge(const double* row, int id, double* best, int* winner,
                       std::size_t n);

// Shared deconvolve_trial post-pass (every target): rejects non-finite
// results and boundary-coefficient inconsistencies, rejects negative dips
// beyond round-off, clamps the surviving round-off negatives to zero.
bool DeconvolveChecksPass(const double* src, std::size_t n, double p,
                          double* out);

}  // namespace detail

}  // namespace vk
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_VECTOR_KERNELS_H_
