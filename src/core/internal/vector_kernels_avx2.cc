// AVX2 implementations of the vector kernels (4 x f64 lanes).
//
// Exactness (see vector_kernels.h): convolve_trial, scale, scale_add and
// argmax_merge keep the scalar reference's per-element expressions using
// explicit mul/add intrinsics (no FMA contraction), so they are
// bit-identical to kScalar. prefix_sum, suffix_sum, sum and the
// deconvolve_trial recurrence use in-register scans that reassociate
// additions and are epsilon-bounded instead.
//
// This translation unit is compiled with -mavx2 (see src/CMakeLists.txt)
// and must never be entered on a CPU without AVX2 — runtime dispatch in
// util/simd.cc guarantees that.

#if !defined(__AVX2__)
#error "vector_kernels_avx2.cc must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <cstddef>

#include "core/internal/vector_kernels.h"

#include "util/kernel_annotations.h"

namespace urank {
namespace vk {
namespace {

// [0, x0, x1, x2]
inline __m256d Slide1(__m256d x) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 0)),
                         _mm256_setzero_pd(), 0x1);
}

// [0, 0, x0, x1]
inline __m256d Slide2(__m256d x) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(1, 0, 0, 0)),
                         _mm256_setzero_pd(), 0x3);
}

// [x1, x2, x3, 0]
inline __m256d SlideUp1(__m256d x) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(3, 3, 2, 1)),
                         _mm256_setzero_pd(), 0x8);
}

// [x2, x3, 0, 0]
inline __m256d SlideUp2(__m256d x) {
  return _mm256_blend_pd(_mm256_permute4x64_pd(x, _MM_SHUFFLE(3, 3, 3, 2)),
                         _mm256_setzero_pd(), 0xC);
}

inline __m256d BroadcastLane3(__m256d x) {
  return _mm256_permute4x64_pd(x, _MM_SHUFFLE(3, 3, 3, 3));
}

inline __m256d BroadcastLane0(__m256d x) {
  return _mm256_permute4x64_pd(x, _MM_SHUFFLE(0, 0, 0, 0));
}

inline double Lane0(__m256d x) { return _mm256_cvtsd_f64(x); }

URANK_KERNEL
void ConvolveTrial(double* v, std::size_t n, double p) {
  const double q = 1.0 - p;
  v[n] = v[n - 1] * p;
  const __m256d q4 = _mm256_set1_pd(q);
  const __m256d p4 = _mm256_set1_pd(p);
  std::size_t c = n - 1;  // highest index still to update
  // Each block writes v[c-3..c] from v[c-4..c]; the reads all happen
  // before the store and the next block's reads sit strictly below this
  // block's writes, so the descending in-place update stays exact.
  while (c >= 4) {
    const __m256d hi = _mm256_loadu_pd(v + c - 3);
    const __m256d lo = _mm256_loadu_pd(v + c - 4);
    _mm256_storeu_pd(
        v + c - 3,
        _mm256_add_pd(_mm256_mul_pd(hi, q4), _mm256_mul_pd(lo, p4)));
    c -= 4;
  }
  for (; c > 0; --c) v[c] = v[c] * q + v[c - 1] * p;
  v[0] *= q;
}

// First-order recurrence out[c] = b[c] + a*out[c-1] (and its mirror for
// the backward branch) as a blocked in-register scan: two shifted
// multiply-adds build the within-block scan, then the carry enters through
// the geometric weights [a, a^2, a^3, a^4]. |a| <= 1 by the direction
// choice, so the weights cannot overflow.
URANK_KERNEL
bool DeconvolveTrial(const double* src, std::size_t n, double p, double* out) {
  const double q = 1.0 - p;
  if (p <= 0.5) {
    const double inv = 1.0 / q;
    const double a = -p * inv;
    const __m256d inv4 = _mm256_set1_pd(inv);
    const __m256d a1 = _mm256_set1_pd(a);
    const __m256d a2 = _mm256_set1_pd(a * a);
    const __m256d apow = _mm256_setr_pd(a, a * a, a * a * a, a * a * a * a);
    double carry = 0.0;  // out[c-1]
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const __m256d b = _mm256_mul_pd(_mm256_loadu_pd(src + c), inv4);
      __m256d t = _mm256_add_pd(b, _mm256_mul_pd(a1, Slide1(b)));
      t = _mm256_add_pd(t, _mm256_mul_pd(a2, Slide2(t)));
      t = _mm256_add_pd(t, _mm256_mul_pd(apow, _mm256_set1_pd(carry)));
      _mm256_storeu_pd(out + c, t);
      carry = Lane0(BroadcastLane3(t));
    }
    for (; c < n; ++c) {
      const double v = src[c] * inv + a * carry;
      out[c] = v;
      carry = v;
    }
  } else {
    const double inv = 1.0 / p;
    const double a = -q * inv;
    const __m256d inv4 = _mm256_set1_pd(inv);
    const __m256d a1 = _mm256_set1_pd(a);
    const __m256d a2 = _mm256_set1_pd(a * a);
    // Descending recurrence: out[j] = src[j+1]*inv + a*out[j+1], so the
    // carry enters lane 3 with weight a and lane 0 with weight a^4.
    const __m256d apow = _mm256_setr_pd(a * a * a * a, a * a * a, a * a, a);
    double carry = 0.0;  // out[j+1]
    std::size_t j = n;   // next index to write is j-1
    while (j >= 4) {
      j -= 4;
      const __m256d b = _mm256_mul_pd(_mm256_loadu_pd(src + j + 1), inv4);
      __m256d t = _mm256_add_pd(b, _mm256_mul_pd(a1, SlideUp1(b)));
      t = _mm256_add_pd(t, _mm256_mul_pd(a2, SlideUp2(t)));
      t = _mm256_add_pd(t, _mm256_mul_pd(apow, _mm256_set1_pd(carry)));
      _mm256_storeu_pd(out + j, t);
      carry = Lane0(t);
    }
    while (j > 0) {
      --j;
      const double v = src[j + 1] * inv + a * carry;
      out[j] = v;
      carry = v;
    }
  }
  return detail::DeconvolveChecksPass(src, n, p, out);
}

URANK_KERNEL
void PrefixSum(double* v, std::size_t n) {
  __m256d carry = _mm256_setzero_pd();  // running total, broadcast
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    __m256d x = _mm256_loadu_pd(v + c);
    x = _mm256_add_pd(x, Slide1(x));
    x = _mm256_add_pd(x, Slide2(x));
    x = _mm256_add_pd(x, carry);
    _mm256_storeu_pd(v + c, x);
    carry = BroadcastLane3(x);
  }
  double s = Lane0(carry);
  for (; c < n; ++c) {
    s += v[c];
    v[c] = s;
  }
}

URANK_KERNEL
void SuffixSum(const double* mass, double* suffix, std::size_t n) {
  suffix[n] = 0.0;
  // Scalar head at the top end so the vector loop runs on whole blocks.
  std::size_t c = n;
  double s = 0.0;
  for (std::size_t i = n % 4; i > 0; --i) {
    --c;
    s += mass[c];
    suffix[c] = s;
  }
  __m256d carry = _mm256_set1_pd(s);
  while (c >= 4) {
    c -= 4;
    __m256d x = _mm256_loadu_pd(mass + c);
    x = _mm256_add_pd(x, SlideUp1(x));
    x = _mm256_add_pd(x, SlideUp2(x));
    x = _mm256_add_pd(x, carry);
    _mm256_storeu_pd(suffix + c, x);
    carry = BroadcastLane0(x);
  }
}

URANK_KERNEL
double Sum(const double* v, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + c));
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; c < n; ++c) s += v[c];
  return s;
}

URANK_KERNEL
void Scale(double* out, const double* in, double a, std::size_t n) {
  const __m256d a4 = _mm256_set1_pd(a);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    _mm256_storeu_pd(out + c, _mm256_mul_pd(a4, _mm256_loadu_pd(in + c)));
  }
  for (; c < n; ++c) out[c] = a * in[c];
}

URANK_KERNEL
void ScaleAdd(double* out, const double* in, double a, std::size_t n) {
  const __m256d a4 = _mm256_set1_pd(a);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d prod = _mm256_mul_pd(a4, _mm256_loadu_pd(in + c));
    _mm256_storeu_pd(out + c, _mm256_add_pd(_mm256_loadu_pd(out + c), prod));
  }
  for (; c < n; ++c) out[c] += a * in[c];
}

URANK_KERNEL
void ArgmaxMerge(const double* row, int id, double* best, int* winner,
                 std::size_t n) {
  std::size_t c = 0;
  // Vector compare prunes blocks where no candidate can win; the (rare)
  // surviving blocks resolve ties with the exact scalar predicate.
  for (; c + 4 <= n; c += 4) {
    const __m256d r = _mm256_loadu_pd(row + c);
    const __m256d b = _mm256_loadu_pd(best + c);
    if (_mm256_movemask_pd(_mm256_cmp_pd(r, b, _CMP_GE_OQ)) == 0) continue;
    detail::ScalarArgmaxMerge(row + c, id, best + c, winner + c, 4);
  }
  if (c < n) detail::ScalarArgmaxMerge(row + c, id, best + c, winner + c, n - c);
}

constexpr KernelOps kAvx2Ops = {
    &ConvolveTrial, &DeconvolveTrial, &PrefixSum, &SuffixSum,
    &Sum,           &Scale,           &ScaleAdd,  &ArgmaxMerge,
};

}  // namespace

const KernelOps& Avx2Ops() { return kAvx2Ops; }

}  // namespace vk
}  // namespace urank
