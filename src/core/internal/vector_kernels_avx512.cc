// AVX-512F implementations of the vector kernels (8 x f64 lanes).
//
// Same structure as vector_kernels_avx2.cc, widened to 512-bit registers:
// elementwise primitives keep the scalar per-element expressions (explicit
// mul/add, no FMA contraction — bit-identical to kScalar); the scans use
// three shifted in-register add steps (1, 2, 4) plus a broadcast carry and
// are epsilon-bounded against the scalar reference.
//
// Compiled with -mavx512f (see src/CMakeLists.txt); runtime dispatch in
// util/simd.cc keeps this translation unit off CPUs without AVX-512.

#if !defined(__AVX512F__)
#error "vector_kernels_avx512.cc must be compiled with -mavx512f"
#endif

#include <immintrin.h>

#include <cstddef>

#include "core/internal/vector_kernels.h"

#include "util/kernel_annotations.h"

namespace urank {
namespace vk {
namespace {

// Shift k lanes toward the high end, zero-filling the bottom:
// [0 x k, x0, ..., x_{7-k}].
template <int K>
inline __m512d Slide(__m512d x) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_castpd_si512(x), _mm512_setzero_si512(), 8 - K));
}

// Shift k lanes toward the low end, zero-filling the top:
// [x_k, ..., x7, 0 x k].
template <int K>
inline __m512d SlideUp(__m512d x) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_setzero_si512(), _mm512_castpd_si512(x), K));
}

inline __m512d BroadcastLane7(__m512d x) {
  return _mm512_permutexvar_pd(_mm512_set1_epi64(7), x);
}

inline __m512d BroadcastLane0(__m512d x) {
  return _mm512_permutexvar_pd(_mm512_set1_epi64(0), x);
}

inline double Lane0(__m512d x) { return _mm512_cvtsd_f64(x); }

URANK_KERNEL
void ConvolveTrial(double* v, std::size_t n, double p) {
  const double q = 1.0 - p;
  v[n] = v[n - 1] * p;
  const __m512d q8 = _mm512_set1_pd(q);
  const __m512d p8 = _mm512_set1_pd(p);
  std::size_t c = n - 1;  // highest index still to update
  while (c >= 8) {
    const __m512d hi = _mm512_loadu_pd(v + c - 7);
    const __m512d lo = _mm512_loadu_pd(v + c - 8);
    _mm512_storeu_pd(
        v + c - 7,
        _mm512_add_pd(_mm512_mul_pd(hi, q8), _mm512_mul_pd(lo, p8)));
    c -= 8;
  }
  for (; c > 0; --c) v[c] = v[c] * q + v[c - 1] * p;
  v[0] *= q;
}

URANK_KERNEL
bool DeconvolveTrial(const double* src, std::size_t n, double p, double* out) {
  const double q = 1.0 - p;
  if (p <= 0.5) {
    const double inv = 1.0 / q;
    const double a = -p * inv;
    double ap[9];  // ap[k] = a^k
    ap[0] = 1.0;
    for (int k = 1; k <= 8; ++k) ap[k] = ap[k - 1] * a;
    const __m512d inv8 = _mm512_set1_pd(inv);
    const __m512d a1 = _mm512_set1_pd(a);
    const __m512d a2 = _mm512_set1_pd(ap[2]);
    const __m512d a4 = _mm512_set1_pd(ap[4]);
    const __m512d apow = _mm512_setr_pd(ap[1], ap[2], ap[3], ap[4], ap[5],
                                        ap[6], ap[7], ap[8]);
    double carry = 0.0;  // out[c-1]
    std::size_t c = 0;
    for (; c + 8 <= n; c += 8) {
      const __m512d b = _mm512_mul_pd(_mm512_loadu_pd(src + c), inv8);
      __m512d t = _mm512_add_pd(b, _mm512_mul_pd(a1, Slide<1>(b)));
      t = _mm512_add_pd(t, _mm512_mul_pd(a2, Slide<2>(t)));
      t = _mm512_add_pd(t, _mm512_mul_pd(a4, Slide<4>(t)));
      t = _mm512_add_pd(t, _mm512_mul_pd(apow, _mm512_set1_pd(carry)));
      _mm512_storeu_pd(out + c, t);
      carry = Lane0(BroadcastLane7(t));
    }
    for (; c < n; ++c) {
      const double v = src[c] * inv + a * carry;
      out[c] = v;
      carry = v;
    }
  } else {
    const double inv = 1.0 / p;
    const double a = -q * inv;
    double ap[9];
    ap[0] = 1.0;
    for (int k = 1; k <= 8; ++k) ap[k] = ap[k - 1] * a;
    const __m512d inv8 = _mm512_set1_pd(inv);
    const __m512d a1 = _mm512_set1_pd(a);
    const __m512d a2 = _mm512_set1_pd(ap[2]);
    const __m512d a4 = _mm512_set1_pd(ap[4]);
    // Descending recurrence out[j] = src[j+1]*inv + a*out[j+1]: the carry
    // enters lane 7 with weight a and lane 0 with weight a^8.
    const __m512d apow = _mm512_setr_pd(ap[8], ap[7], ap[6], ap[5], ap[4],
                                        ap[3], ap[2], ap[1]);
    double carry = 0.0;  // out[j+1]
    std::size_t j = n;   // next index to write is j-1
    while (j >= 8) {
      j -= 8;
      const __m512d b = _mm512_mul_pd(_mm512_loadu_pd(src + j + 1), inv8);
      __m512d t = _mm512_add_pd(b, _mm512_mul_pd(a1, SlideUp<1>(b)));
      t = _mm512_add_pd(t, _mm512_mul_pd(a2, SlideUp<2>(t)));
      t = _mm512_add_pd(t, _mm512_mul_pd(a4, SlideUp<4>(t)));
      t = _mm512_add_pd(t, _mm512_mul_pd(apow, _mm512_set1_pd(carry)));
      _mm512_storeu_pd(out + j, t);
      carry = Lane0(t);
    }
    while (j > 0) {
      --j;
      const double v = src[j + 1] * inv + a * carry;
      out[j] = v;
      carry = v;
    }
  }
  return detail::DeconvolveChecksPass(src, n, p, out);
}

URANK_KERNEL
void PrefixSum(double* v, std::size_t n) {
  __m512d carry = _mm512_setzero_pd();  // running total, broadcast
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    __m512d x = _mm512_loadu_pd(v + c);
    x = _mm512_add_pd(x, Slide<1>(x));
    x = _mm512_add_pd(x, Slide<2>(x));
    x = _mm512_add_pd(x, Slide<4>(x));
    x = _mm512_add_pd(x, carry);
    _mm512_storeu_pd(v + c, x);
    carry = BroadcastLane7(x);
  }
  double s = Lane0(carry);
  for (; c < n; ++c) {
    s += v[c];
    v[c] = s;
  }
}

URANK_KERNEL
void SuffixSum(const double* mass, double* suffix, std::size_t n) {
  suffix[n] = 0.0;
  std::size_t c = n;
  double s = 0.0;
  for (std::size_t i = n % 8; i > 0; --i) {
    --c;
    s += mass[c];
    suffix[c] = s;
  }
  __m512d carry = _mm512_set1_pd(s);
  while (c >= 8) {
    c -= 8;
    __m512d x = _mm512_loadu_pd(mass + c);
    x = _mm512_add_pd(x, SlideUp<1>(x));
    x = _mm512_add_pd(x, SlideUp<2>(x));
    x = _mm512_add_pd(x, SlideUp<4>(x));
    x = _mm512_add_pd(x, carry);
    _mm512_storeu_pd(suffix + c, x);
    carry = BroadcastLane0(x);
  }
}

URANK_KERNEL
double Sum(const double* v, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) acc = _mm512_add_pd(acc, _mm512_loadu_pd(v + c));
  double lanes[8];
  _mm512_storeu_pd(lanes, acc);
  double s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
             ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; c < n; ++c) s += v[c];
  return s;
}

URANK_KERNEL
void Scale(double* out, const double* in, double a, std::size_t n) {
  const __m512d a8 = _mm512_set1_pd(a);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm512_storeu_pd(out + c, _mm512_mul_pd(a8, _mm512_loadu_pd(in + c)));
  }
  for (; c < n; ++c) out[c] = a * in[c];
}

URANK_KERNEL
void ScaleAdd(double* out, const double* in, double a, std::size_t n) {
  const __m512d a8 = _mm512_set1_pd(a);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512d prod = _mm512_mul_pd(a8, _mm512_loadu_pd(in + c));
    _mm512_storeu_pd(out + c, _mm512_add_pd(_mm512_loadu_pd(out + c), prod));
  }
  for (; c < n; ++c) out[c] += a * in[c];
}

URANK_KERNEL
void ArgmaxMerge(const double* row, int id, double* best, int* winner,
                 std::size_t n) {
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m512d r = _mm512_loadu_pd(row + c);
    const __m512d b = _mm512_loadu_pd(best + c);
    if (_mm512_cmp_pd_mask(r, b, _CMP_GE_OQ) == 0) continue;
    detail::ScalarArgmaxMerge(row + c, id, best + c, winner + c, 8);
  }
  if (c < n) detail::ScalarArgmaxMerge(row + c, id, best + c, winner + c, n - c);
}

constexpr KernelOps kAvx512Ops = {
    &ConvolveTrial, &DeconvolveTrial, &PrefixSum, &SuffixSum,
    &Sum,           &Scale,           &ScaleAdd,  &ArgmaxMerge,
};

}  // namespace

const KernelOps& Avx512Ops() { return kAvx512Ops; }

}  // namespace vk
}  // namespace urank
