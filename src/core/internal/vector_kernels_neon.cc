// NEON implementations of the vector kernels (2 x f64 lanes, AArch64).
//
// With only two double lanes, the in-register scan trick that pays off on
// AVX2/AVX-512 barely beats the serial recurrence, so this target
// vectorizes the elementwise primitives (convolve, scale, scale_add, sum)
// and delegates the scan-dominated ones (deconvolve, prefix/suffix sums,
// argmax tie resolution) to the scalar reference. Elementwise primitives
// use explicit vmulq/vaddq (no fused multiply-add), matching the scalar
// per-element expressions exactly.
//
// Compiled only on AArch64 (see src/CMakeLists.txt), where NEON is
// architecturally guaranteed.

#if !defined(__aarch64__)
#error "vector_kernels_neon.cc is AArch64-only"
#endif

#include <arm_neon.h>

#include <cstddef>

#include "core/internal/vector_kernels.h"

#include "util/kernel_annotations.h"

namespace urank {
namespace vk {
namespace {

URANK_KERNEL
void ConvolveTrial(double* v, std::size_t n, double p) {
  const double q = 1.0 - p;
  v[n] = v[n - 1] * p;
  const float64x2_t q2 = vdupq_n_f64(q);
  const float64x2_t p2 = vdupq_n_f64(p);
  std::size_t c = n - 1;  // highest index still to update
  while (c >= 2) {
    const float64x2_t hi = vld1q_f64(v + c - 1);
    const float64x2_t lo = vld1q_f64(v + c - 2);
    vst1q_f64(v + c - 1, vaddq_f64(vmulq_f64(hi, q2), vmulq_f64(lo, p2)));
    c -= 2;
  }
  for (; c > 0; --c) v[c] = v[c] * q + v[c - 1] * p;
  v[0] *= q;
}

URANK_KERNEL
double Sum(const double* v, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) acc = vaddq_f64(acc, vld1q_f64(v + c));
  double s = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; c < n; ++c) s += v[c];
  return s;
}

URANK_KERNEL
void Scale(double* out, const double* in, double a, std::size_t n) {
  const float64x2_t a2 = vdupq_n_f64(a);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    vst1q_f64(out + c, vmulq_f64(a2, vld1q_f64(in + c)));
  }
  for (; c < n; ++c) out[c] = a * in[c];
}

URANK_KERNEL
void ScaleAdd(double* out, const double* in, double a, std::size_t n) {
  const float64x2_t a2 = vdupq_n_f64(a);
  std::size_t c = 0;
  for (; c + 2 <= n; c += 2) {
    const float64x2_t prod = vmulq_f64(a2, vld1q_f64(in + c));
    vst1q_f64(out + c, vaddq_f64(vld1q_f64(out + c), prod));
  }
  for (; c < n; ++c) out[c] += a * in[c];
}

constexpr KernelOps kNeonOps = {
    &ConvolveTrial,
    &detail::ScalarDeconvolveTrial,
    &detail::ScalarPrefixSum,
    &detail::ScalarSuffixSum,
    &Sum,
    &Scale,
    &ScaleAdd,
    &detail::ScalarArgmaxMerge,
};

}  // namespace

const KernelOps& NeonOps() { return kNeonOps; }

}  // namespace vk
}  // namespace urank
