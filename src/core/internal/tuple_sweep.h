// Internal helper: the shared machinery of the tuple-level sweep kernels.
// Not part of the public API.
//
// rank_distribution_tuple.cc and the pruned quantile kernels
// (quantile_rank_prune.cc) must produce bit-identical per-tuple rank
// distributions, so the sweep primitives they share live here exactly
// once: the (score desc, index asc) rank order, the deterministic chunk
// grid, the chunk-entry prefix replay, the incremental Poisson-binomial
// chunk sweep, and the shared absent-branch world-size state. Everything
// is a pure function of the relation and tie policy — the thread count
// never enters — which is what keeps serial, parallel and pruned
// executions on the identical chunk subproblems (docs/PERFORMANCE.md).

#ifndef URANK_CORE_INTERNAL_TUPLE_SWEEP_H_
#define URANK_CORE_INTERNAL_TUPLE_SWEEP_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/internal/kernel_arena.h"
#include "core/internal/vector_kernels.h"
#include "core/rank_distribution_tuple.h"
#include "model/tuple_model.h"
#include "model/types.h"

namespace urank {
namespace internal {

// Probabilities below this are treated as exactly 0/1 by the sweeps.
inline constexpr double kTupleSweepProbEps = 1e-12;

// PbConvolveTrial / PbDeconvolveTrial on arena-backed aligned buffers,
// dispatched through the active vector-kernel table. Preconditions are the
// kernel invariants (p in (0,1], non-empty pmf) already enforced upstream.
void BufConvolveTrial(const vk::KernelOps& ops, AlignedBuf* pmf, double p);
bool BufDeconvolveTrial(const vk::KernelOps& ops, const AlignedBuf& src,
                        double p, AlignedBuf* out);

// Index order sorted by (score desc, index asc): the sweep order in which
// "already processed" means "ranked above" (exactly, under kBreakByIndex;
// up to the current equal-score run, under kStrictGreater).
std::vector<int> TupleRankOrder(const TupleRelation& rel);

// Deterministic sweep grid: chunk start positions into `order`, aligned to
// equal-score run starts (a run must never straddle chunks — its members
// share one "ranked above" prefix), work-balanced by a per-position cost
// of 1 + (distinct rules touched so far), which tracks the Poisson-
// binomial support the sweep carries at that position. A pure function of
// the relation and tie policy — the thread count never enters, so every
// execution schedule solves the identical per-chunk subproblems.
std::vector<std::size_t> PlanTupleChunkStarts(const TupleRelation& rel,
                                              const std::vector<int>& order,
                                              TiePolicy ties);

// Replays the rule prefix masses the sweep would carry entering position
// `begin` — exactly the update the chunk flush applies, so chunk-entry
// state is bit-identical to what an unchunked sweep would hold there.
void ReplayTuplePrefix(const TupleRelation& rel, const std::vector<int>& order,
                       std::size_t begin, AlignedBuf* cur);

// Chunk-local sweep state: per-rule prefix masses plus the flat Poisson
// binomial over their nonzero entries. All updates go through arena-backed
// aligned buffers — the per-tuple loop performs no heap allocation once
// the buffers reach their high-water size — and all pmf arithmetic goes
// through one vector-kernel table captured at sweep entry.
struct ChunkSweep {
  const TupleRelation& rel;
  const vk::KernelOps& ops;
  AlignedBuf& cur;      // per-rule mass ranked above the cursor
  AlignedBuf& pmf;      // Poisson binomial over nonzero cur[]
  AlignedBuf& scratch;  // deconvolution ping-pong target

  // Rebuilds a pmf from cur in canonical rule-index order, skipping
  // `skip_rule` (-1 for none). Depends only on the mass values, so the
  // deconvolution fallback stays deterministic under any schedule.
  void Rebuild(AlignedBuf* out, int skip_rule) const;

  // The sweep pmf with rule r's current mass conditioned out; returns a
  // pointer to `pmf` itself when the rule carries no mass yet (no copy).
  const AlignedBuf* WithoutRule(int r, AlignedBuf* out) const;

  // Moves the tuple at position i into the "ranked above" prefix.
  void Flush(int i);
};

// Optional prune hook for SweepAppearChunk: invoked at every equal-score
// run boundary after the preceding run was flushed — including the chunk
// end, so a chunk-by-chunk driver can stop between chunks — with the
// position of the next unvisited tuple and the sweep's Poisson binomial
// over the per-rule masses of every flushed tuple (the exact `pmf` the
// next tuple's appear branch would condition on). Returning true stops
// the sweep there.
using TupleSweepStopFn = std::function<bool(std::size_t, const AlignedBuf&)>;

// Sweeps chunk positions [begin, end) of `order`, invoking
// per_tuple(i, appear) with the appear-branch pmf (the tuple's own rule
// conditioned out). Equal-score runs flush only after every member was
// visited, matching the kStrictGreater semantics of the unchunked sweep.
// `entry_mass`, when non-null, is the precomputed per-rule prefix state at
// `begin` (num_rules doubles, the exact ReplayTuplePrefix values) and
// replaces the O(begin) replay. `stop`, when non-null, is consulted at run
// boundaries (see TupleSweepStopFn); the return value is the position the
// sweep stopped at — `end` when it ran to completion. The stop hook never
// changes the values computed for visited tuples: it only truncates the
// sweep, so a pruned execution is a prefix of the unpruned one.
std::size_t SweepAppearChunk(
    const TupleRelation& rel, const std::vector<int>& order, TiePolicy ties,
    std::size_t begin, std::size_t end, const double* entry_mass,
    KernelArena* arena,
    const std::function<void(int, const AlignedBuf&)>& per_tuple,
    const TupleSweepStopFn* stop = nullptr);

// Shared absent-branch state: the pristine world-size Poisson binomial
// over final rule masses. Built once, sequentially, in rule-index order;
// chunk workers only ever *read* pmf_all (deconvolving into their own
// arena buffers), so concurrent access needs no synchronization and the
// result cannot depend on tuple visit order.
struct AbsentContext {
  std::vector<double> rule_sums;  // min(rule mass, 1) per rule
  std::vector<double> pmf_all;    // Poisson binomial over nonzero sums

  explicit AbsentContext(const TupleRelation& rel);

  // Writes into `out` the world-size pmf with rule r's unconditional mass
  // replaced by `cond` (its mass conditioned on the reference tuple being
  // absent). Reads shared state only.
  void ConditionalWorldSize(const vk::KernelOps& ops, int r, double cond,
                            AlignedBuf* out) const;
};

// Entry-mass row for `chunk`, or null when no table was supplied.
inline const double* TupleSweepEntryRow(const TupleSweepEntryTable* entries,
                                        int chunk) {
  if (entries == nullptr || entries->num_rules == 0) return nullptr;
  return entries->entry_mass.data() +
         static_cast<std::size_t>(chunk) *
             static_cast<std::size_t>(entries->num_rules);
}

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_TUPLE_SWEEP_H_
