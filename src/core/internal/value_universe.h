// Internal helper: the sorted value universe of an attribute-level
// relation — every distinct support value with its aggregate probability
// mass and suffix sums, so q(v) = Σ_j Pr[X_j > v] is a binary search.
// This is the shared precomputation behind A-ERank (eq. 4); the engine's
// PreparedAttrRelation builds it once and reuses it across queries. Not
// part of the public API.

#ifndef URANK_CORE_INTERNAL_VALUE_UNIVERSE_H_
#define URANK_CORE_INTERNAL_VALUE_UNIVERSE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "core/internal/vector_kernels.h"
#include "model/attr_model.h"

namespace urank {
namespace internal {

// Sorted universe of all values with the aggregate probability mass at
// each distinct value; suffix sums give q(v) = Σ_j Pr[X_j > v].
struct ValueUniverse {
  std::vector<double> values;  // ascending, distinct
  std::vector<double> mass;    // total probability at values[l]
  std::vector<double> suffix;  // suffix[l] = sum of mass[l..]

  // q(v): total probability mass strictly above v, over all tuples.
  double QGreater(double v) const {
    const size_t idx = static_cast<size_t>(
        std::upper_bound(values.begin(), values.end(), v) - values.begin());
    return suffix[idx];
  }
};

inline ValueUniverse BuildValueUniverse(const AttrRelation& rel) {
  const int n = rel.size();
  std::vector<std::pair<double, double>> universe;  // (value, mass)
  universe.reserve(static_cast<size_t>(n) * 2);
  for (int i = 0; i < n; ++i) {
    for (const ScoreValue& sv : rel.tuple(i).pdf) {
      universe.emplace_back(sv.value, sv.prob);
    }
  }
  std::sort(universe.begin(), universe.end());
  ValueUniverse u;
  // Collapse duplicates.
  for (const auto& [v, p] : universe) {
    if (!u.values.empty() && u.values.back() == v) {
      u.mass.back() += p;
    } else {
      u.values.push_back(v);
      u.mass.push_back(p);
    }
  }
  u.suffix.resize(u.values.size() + 1);
  vk::Active().suffix_sum(u.mass.data(), u.suffix.data(), u.values.size());
  return u;
}

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_VALUE_UNIVERSE_H_
