// Internal helper: a discrete score pdf sorted by value with suffix sums,
// supporting O(log s) tail queries and O(s) pairwise comparisons. Not part
// of the public API.

#ifndef URANK_CORE_INTERNAL_SORTED_PDF_H_
#define URANK_CORE_INTERNAL_SORTED_PDF_H_

#include <algorithm>
#include <vector>

#include "core/internal/vector_kernels.h"
#include "model/attr_model.h"

namespace urank {
namespace internal {

// A tuple's pdf sorted by value ascending, with suffix probability sums:
// suffix[l] = Σ_{m >= l} p_m, so Pr[X > v] and Pr[X >= v] are binary
// searches.
struct SortedPdf {
  std::vector<double> values;  // ascending
  std::vector<double> probs;
  std::vector<double> suffix;  // suffix[l] = sum of probs[l..]

  SortedPdf() = default;

  explicit SortedPdf(const AttrTuple& t) {
    std::vector<ScoreValue> scratch;
    Build(t, &scratch);
  }

  // (Re)builds from t's pdf, sorting inside *scratch instead of a fresh
  // copy. The member vectors and the scratch buffer are reused at their
  // high-water capacity, so rebuilding a sequence of same-sized pdfs
  // performs no allocation after the first.
  void Build(const AttrTuple& t, std::vector<ScoreValue>* scratch) {
    scratch->assign(t.pdf.begin(), t.pdf.end());
    std::sort(scratch->begin(), scratch->end(),
              [](const ScoreValue& a, const ScoreValue& b) {
                return a.value < b.value;
              });
    const size_t s = scratch->size();
    values.resize(s);
    probs.resize(s);
    for (size_t l = 0; l < s; ++l) {
      values[l] = (*scratch)[l].value;
      probs[l] = (*scratch)[l].prob;
    }
    suffix.resize(s + 1);
    vk::Active().suffix_sum(probs.data(), suffix.data(), s);
  }

  // Pr[X > v].
  double PrGreater(double v) const {
    const size_t idx = static_cast<size_t>(
        std::upper_bound(values.begin(), values.end(), v) - values.begin());
    return suffix[idx];
  }

  // Pr[X >= v].
  double PrGreaterEqual(double v) const {
    const size_t idx = static_cast<size_t>(
        std::lower_bound(values.begin(), values.end(), v) - values.begin());
    return suffix[idx];
  }

  // Pr[X = v].
  double PrEqual(double v) const { return PrGreaterEqual(v) - PrGreater(v); }
};

// Pr[X_a > X_b] for two sorted pdfs, by a linear merge: for each value of
// `a`, accumulate the probability mass of `b` strictly below it.
inline double PrGreaterPair(const SortedPdf& a, const SortedPdf& b) {
  double result = 0.0;
  double below = 0.0;  // Pr[X_b < a.values[la]] maintained by the merge
  size_t lb = 0;
  for (size_t la = 0; la < a.values.size(); ++la) {
    while (lb < b.values.size() && b.values[lb] < a.values[la]) {
      below += b.probs[lb];
      ++lb;
    }
    result += a.probs[la] * below;
  }
  return result;
}

// Pr[X_a = X_b].
inline double PrEqualPair(const SortedPdf& a, const SortedPdf& b) {
  double result = 0.0;
  size_t la = 0, lb = 0;
  while (la < a.values.size() && lb < b.values.size()) {
    if (a.values[la] < b.values[lb]) {
      ++la;
    } else if (a.values[la] > b.values[lb]) {
      ++lb;
    } else {
      result += a.probs[la] * b.probs[lb];
      ++la;
      ++lb;
    }
  }
  return result;
}

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_SORTED_PDF_H_
