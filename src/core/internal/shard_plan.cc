#include "core/internal/shard_plan.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/internal/kernel_arena.h"
#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/topology.h"

namespace urank {
namespace internal {

namespace {

// Shard-grid defaults: one shard per ~8k sweep positions, capped. Wider
// than the DP chunk grain so shard state (order + prefix copies) stays a
// small multiple of the relation, with enough shards for any realistic
// node count.
constexpr long long kShardGrain = 8192;
constexpr int kDefaultMaxShards = 32;

// One bulk-copy job and the planning node whose worker group should
// execute it (so the copied pages are first-touched node-local).
using HomedFill = std::pair<int, std::function<void()>>;

// Runs every fill exactly once. Helpers are submitted to each home
// group; the caller participates too (claiming its home's fills first,
// then any remaining), so completion never depends on pool capacity —
// the same no-nested-deadlock protocol ParallelFor uses. Which thread
// copies is a locality decision only; the copied values are identical.
struct FillState {
  explicit FillState(std::vector<HomedFill> f)
      : fills(std::move(f)),
        claimed(std::make_unique<std::atomic<int>[]>(fills.size())) {
    for (size_t i = 0; i < fills.size(); ++i) {
      claimed[i].store(0, std::memory_order_release);
    }
  }

  void Drain(int home) {
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < fills.size(); ++i) {
        if (pass == 0 && fills[i].first != home) continue;
        int expected = 0;
        if (!claimed[i].compare_exchange_strong(expected, 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          continue;
        }
        fills[i].second();
        std::lock_guard<std::mutex> lock(mu);
        if (++done == fills.size()) cv.notify_all();
      }
    }
  }

  std::vector<HomedFill> fills;
  std::unique_ptr<std::atomic<int>[]> claimed;
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu
};

void RunHomedFills(std::vector<HomedFill> fills, bool first_touch) {
  if (fills.empty()) return;
  if (!first_touch) {
    for (HomedFill& fill : fills) fill.second();
    return;
  }
  ThreadPool& pool = ThreadPool::Global();
  auto state = std::make_shared<FillState>(std::move(fills));
  if (pool.num_groups() > 1) {
    std::vector<char> submitted(static_cast<size_t>(pool.num_groups()), 0);
    for (const HomedFill& fill : state->fills) {
      const int group = fill.first % pool.num_groups();
      if (submitted[static_cast<size_t>(group)] != 0) continue;
      submitted[static_cast<size_t>(group)] = 1;
      pool.SubmitToGroup(group, [state, group] { state->Drain(group); });
    }
  }
  state->Drain(-1);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done == state->fills.size(); });
}

}  // namespace

TupleShardPlan BuildTupleShardPlan(const TupleRelation& rel,
                                   const std::vector<int>& order,
                                   bool first_touch, int max_shards) {
  return BuildTupleShardPlan(rel, order, /*rank_probs=*/nullptr, first_touch,
                             max_shards);
}

TupleShardPlan BuildTupleShardPlan(const TupleRelation& rel,
                                   const std::vector<int>& order,
                                   const std::vector<double>* rank_probs,
                                   bool first_touch, int max_shards) {
  const long long n = static_cast<long long>(order.size());
  const int num_rules = rel.num_rules();
  TupleShardPlan plan;
  plan.num_rules = num_rules;
  if (max_shards <= 0) max_shards = kDefaultMaxShards;
  const int target = DeterministicChunkCount(n, kShardGrain, max_shards);
  std::vector<long long> bounds = ChunkBoundaries(n, target);
  // Align interior boundaries forward to equal-score run starts so a run
  // never straddles shards; monotone by construction.
  for (int c = 1; c < target; ++c) {
    long long b = std::max(bounds[static_cast<size_t>(c)],
                           bounds[static_cast<size_t>(c) - 1]);
    while (b > 0 && b < n &&
           rel.tuple(order[static_cast<size_t>(b)]).score ==
               rel.tuple(order[static_cast<size_t>(b) - 1]).score) {
      ++b;
    }
    bounds[static_cast<size_t>(c)] = b;
  }

  // Global inclusive prefix sums of existence probability in rank order,
  // through the same vector kernel the unchunked T-ERank sweep used —
  // sliced values are therefore bit-identical to what that sweep read.
  AlignedBuf pref;
  pref.resize(static_cast<size_t>(n));
  if (rank_probs != nullptr) {
    URANK_CHECK_MSG(rank_probs->size() == static_cast<size_t>(n),
                    "rank_probs must have one entry per sweep position");
    pref.assign(rank_probs->data(), static_cast<size_t>(n));
  } else {
    for (long long idx = 0; idx < n; ++idx) {
      pref[static_cast<size_t>(idx)] =
          rel.tuple(order[static_cast<size_t>(idx)]).prob;
    }
  }
  if (n > 0) vk::Active().prefix_sum(pref.data(), static_cast<size_t>(n));

  const int nodes = std::max(1, GlobalTopology().num_nodes());
  plan.shards.resize(static_cast<size_t>(target));
  std::vector<HomedFill> fills;
  fills.reserve(static_cast<size_t>(target));
  // Per-rule "above" masses entering each shard: plain sequential addition
  // in rank order — exactly the accumulation the serial sweep performs, so
  // each snapshot matches the serial state at that position bit for bit.
  std::vector<double> running(static_cast<size_t>(num_rules), 0.0);
  long long cursor = 0;
  for (int s = 0; s < target; ++s) {
    TupleShard& shard = plan.shards[static_cast<size_t>(s)];
    shard.begin = bounds[static_cast<size_t>(s)];
    shard.end = bounds[static_cast<size_t>(s) + 1];
    shard.home_node = s % nodes;
    shard.entry_prefix =
        shard.begin == 0 ? 0.0 : pref[static_cast<size_t>(shard.begin) - 1];
    while (cursor < shard.begin) {
      const int i = order[static_cast<size_t>(cursor)];
      running[static_cast<size_t>(rel.rule_of(i))] += rel.tuple(i).prob;
      ++cursor;
    }
    shard.entry_rule_mass = running;
    fills.emplace_back(shard.home_node, [&rel, &order, &pref, &shard] {
      const size_t len = static_cast<size_t>(shard.end - shard.begin);
      shard.order.resize(len);
      shard.pref.resize(len);
      for (size_t j = 0; j < len; ++j) {
        const size_t global = static_cast<size_t>(shard.begin) + j;
        shard.order[j] = order[global];
        shard.pref[j] = pref[global];
      }
    });
  }
  RunHomedFills(std::move(fills), first_touch);
  return plan;
}

AttrShardPlan BuildAttrShardPlan(const AttrRelation& rel, bool first_touch,
                                 int max_shards) {
  const int n = rel.size();
  AttrShardPlan plan;
  // Cumulative pdf-entry counts: the per-tuple cost profile the boundaries
  // balance. A pure function of the relation.
  std::vector<long long> cum(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    cum[static_cast<size_t>(i) + 1] =
        cum[static_cast<size_t>(i)] +
        static_cast<long long>(rel.tuple(i).pdf.size());
  }
  const long long total = cum[static_cast<size_t>(n)];
  if (max_shards <= 0) max_shards = kDefaultMaxShards;
  int target = DeterministicChunkCount(total, kShardGrain, max_shards);
  target = std::min(target, std::max(n, 1));
  std::vector<int> bounds(static_cast<size_t>(target) + 1, n);
  bounds[0] = 0;
  {
    int idx = 0;
    for (int c = 1; c < target; ++c) {
      const long long threshold =
          total * static_cast<long long>(c) / static_cast<long long>(target);
      while (idx < n && cum[static_cast<size_t>(idx)] < threshold) ++idx;
      bounds[static_cast<size_t>(c)] = idx;
    }
  }

  // The running equal-mass-before table of the serial A-ERank sweep,
  // snapshotted per pdf entry: for each tuple the reads happen before its
  // own masses are added, replicating the serial read/update sequence
  // exactly (only find/insert — never iterated, so no order dependence).
  std::vector<std::size_t> offsets(static_cast<size_t>(n), 0);
  std::vector<double> tie_global;
  tie_global.reserve(static_cast<size_t>(total));
  std::unordered_map<double, double> equal_mass_before;
  for (int i = 0; i < n; ++i) {
    const AttrTuple& t = rel.tuple(i);
    offsets[static_cast<size_t>(i)] = tie_global.size();
    for (const ScoreValue& sv : t.pdf) {
      const auto it = equal_mass_before.find(sv.value);
      tie_global.push_back(it == equal_mass_before.end() ? 0.0 : it->second);
    }
    for (const ScoreValue& sv : t.pdf) {
      equal_mass_before[sv.value] += sv.prob;
    }
  }

  const int nodes = std::max(1, GlobalTopology().num_nodes());
  plan.shards.resize(static_cast<size_t>(target));
  std::vector<HomedFill> fills;
  fills.reserve(static_cast<size_t>(target));
  for (int s = 0; s < target; ++s) {
    AttrShard& shard = plan.shards[static_cast<size_t>(s)];
    shard.begin = bounds[static_cast<size_t>(s)];
    shard.end = bounds[static_cast<size_t>(s) + 1];
    shard.home_node = s % nodes;
    fills.emplace_back(
        shard.home_node, [&rel, &offsets, &tie_global, &shard] {
          const size_t count =
              static_cast<size_t>(shard.end - shard.begin);
          shard.tie_offset.resize(count);
          const size_t base =
              shard.begin < static_cast<int>(offsets.size())
                  ? offsets[static_cast<size_t>(shard.begin)]
                  : tie_global.size();
          size_t entries = 0;
          for (size_t j = 0; j < count; ++j) {
            const size_t global =
                offsets[static_cast<size_t>(shard.begin) + j];
            shard.tie_offset[j] = global - base;
            entries += rel.tuple(shard.begin + static_cast<int>(j))
                           .pdf.size();
          }
          shard.tie_mass.resize(entries);
          for (size_t j = 0; j < entries; ++j) {
            shard.tie_mass[j] = tie_global[base + j];
          }
        });
  }
  RunHomedFills(std::move(fills), first_touch);
  return plan;
}

}  // namespace internal
}  // namespace urank
