// Internal helper: score-range shard plans for the prepared relations.
// Not part of the public API.
//
// A shard is a contiguous slice of the (score desc, index asc) sweep order
// together with everything a worker needs to process it without touching
// state owned by other shards: a copy of its order slice, the global
// inclusive prefix-probability values over that slice, and the exact
// entry state (prefix mass, per-rule masses, tie masses) the unchunked
// sweep would carry into the slice. The entry state is computed by the
// same sequential arithmetic the unchunked kernels perform, so a
// shard-local pass produces bit-identical results to the serial sweep —
// sharding is a layout and scheduling decision, never a numerical one.
//
// Shard boundaries are a pure function of the relation (size and score-run
// structure): they are aligned forward to equal-score run starts, so a run
// never straddles shards and the kStrictGreater run detection inside one
// shard matches the global one. The planning-topology node count decides
// only each shard's *home node* (where its copies are first-touched when
// `first_touch` is requested and the pool spans several nodes) — never the
// boundaries and never the values.

#ifndef URANK_CORE_INTERNAL_SHARD_PLAN_H_
#define URANK_CORE_INTERNAL_SHARD_PLAN_H_

#include <cstddef>
#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {
namespace internal {

// One slice of the tuple-level sweep order (see file comment).
struct TupleShard {
  long long begin = 0;  // positions into the rank order, [begin, end)
  long long end = 0;
  int home_node = 0;  // planning-topology node owning the copies
  // Global inclusive prefix probability entering the shard: the mass of
  // every tuple ranked before position `begin` (0 for the first shard).
  double entry_prefix = 0.0;
  std::vector<int> order;    // rank_order[begin..end), node-local copy
  std::vector<double> pref;  // global inclusive prefix sums, same slice
  // Per-rule probability mass accumulated over positions [0, begin) by
  // plain sequential addition in rank order — the exclusion-rule "above"
  // state the T-ERank sweep holds entering this shard. Size num_rules.
  std::vector<double> entry_rule_mass;
};

struct TupleShardPlan {
  int num_rules = 0;
  std::vector<TupleShard> shards;
};

// Builds the shard plan for `rel` swept in `order` (score desc, index
// asc). The shard grid is a pure function of (rel, order); `max_shards`
// caps it (0 = the deterministic default). With `first_touch`, the bulk
// per-shard copies are filled by worker threads of each shard's home-node
// group so the pages land node-local; the copied values are identical
// either way.
TupleShardPlan BuildTupleShardPlan(const TupleRelation& rel,
                                   const std::vector<int>& order,
                                   bool first_touch, int max_shards = 0);

// As above, with the existence probabilities already gathered in rank
// order (`rank_probs[idx] == rel.tuple(order[idx]).prob`, size n) — e.g.
// by PreparedTupleRelationBuilder's block merge. Skips the O(N) gather
// pass only; the prefix-sum kernel, the shard grid and every copied value
// are identical to the plain overload, so the plan stays a pure function
// of (rel, order) regardless of how the relation was prepared.
TupleShardPlan BuildTupleShardPlan(const TupleRelation& rel,
                                   const std::vector<int>& order,
                                   const std::vector<double>* rank_probs,
                                   bool first_touch, int max_shards = 0);

// One slice of the attribute-level relation, by tuple position.
struct AttrShard {
  int begin = 0;  // tuple positions [begin, end)
  int end = 0;
  int home_node = 0;
  // Flattened per-pdf-entry tie masses for kBreakByIndex: for tuple i in
  // [begin, end) and its l-th pdf entry (in stored order),
  // tie_mass[tie_offset[i - begin] + l] is the probability mass of earlier
  // tuples (j < i) taking exactly that value — the running equal-mass map
  // of the serial A-ERank sweep, snapshotted at tuple i before its own
  // masses are added. The values are independent of the tie policy; the
  // kStrictGreater pass simply never reads them.
  std::vector<std::size_t> tie_offset;  // size end - begin
  std::vector<double> tie_mass;
};

struct AttrShardPlan {
  std::vector<AttrShard> shards;
};

// Builds the attribute-level shard plan: contiguous tuple ranges balanced
// by pdf-entry count (a pure function of the relation), with the tie-mass
// table precomputed by the exact sequential accumulation the serial sweep
// performs. `first_touch` as above.
AttrShardPlan BuildAttrShardPlan(const AttrRelation& rel, bool first_touch,
                                 int max_shards = 0);

}  // namespace internal
}  // namespace urank

#endif  // URANK_CORE_INTERNAL_SHARD_PLAN_H_
