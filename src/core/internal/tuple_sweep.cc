#include "core/internal/tuple_sweep.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/kernel_annotations.h"
#include "util/parallel.h"
#include "util/poisson_binomial.h"

namespace urank {
namespace internal {

URANK_KERNEL void BufConvolveTrial(const vk::KernelOps& ops, AlignedBuf* pmf,
                                   double p) {
  const size_t n = pmf->size();
  pmf->resize(n + 1);
  ops.convolve_trial(pmf->data(), n, p);
}

URANK_KERNEL bool BufDeconvolveTrial(const vk::KernelOps& ops,
                                     const AlignedBuf& src, double p,
                                     AlignedBuf* out) {
  const size_t n = src.size() - 1;
  out->resize(n);
  return ops.deconvolve_trial(src.data(), n, p, out->data());
}

std::vector<int> TupleRankOrder(const TupleRelation& rel) {
  std::vector<int> order(static_cast<size_t>(rel.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

std::vector<size_t> PlanTupleChunkStarts(const TupleRelation& rel,
                                         const std::vector<int>& order,
                                         TiePolicy ties) {
  const size_t n = order.size();
  const int chunks = DeterministicChunkCount(static_cast<long long>(n));
  std::vector<size_t> starts(static_cast<size_t>(chunks) + 1, n);
  starts[0] = 0;
  if (chunks == 1) return starts;

  std::vector<unsigned char> touched(static_cast<size_t>(rel.num_rules()),
                                     0);
  std::vector<long long> cum(n + 1, 0);
  long long support = 0;
  for (size_t idx = 0; idx < n; ++idx) {
    // Integer chunk-cost recurrence for the deterministic chunk grid;
    // not a probability-array sweep.
    // urank-lint: allow(kernel-vectorize)
    cum[idx + 1] = cum[idx] + 1 + support;
    const size_t r = static_cast<size_t>(rel.rule_of(order[idx]));
    // urank-lint: allow(kernel-vectorize) — first-touch flag per rule.
    if (touched[r] == 0) {
      touched[r] = 1;
      ++support;
    }
  }
  const long long total = cum[n];
  int next = 1;
  for (size_t idx = 1; idx < n && next < chunks; ++idx) {
    const bool run_start =
        ties == TiePolicy::kBreakByIndex ||
        rel.tuple(order[idx]).score != rel.tuple(order[idx - 1]).score;
    if (!run_start) continue;
    while (next < chunks &&
           cum[idx] >= total * static_cast<long long>(next) / chunks) {
      starts[static_cast<size_t>(next)] = idx;
      ++next;
    }
  }
  return starts;
}

URANK_KERNEL void ReplayTuplePrefix(const TupleRelation& rel,
                                    const std::vector<int>& order,
                                    size_t begin, AlignedBuf* cur) {
  cur->assign(static_cast<size_t>(rel.num_rules()), 0.0);
  for (size_t idx = 0; idx < begin; ++idx) {
    const int i = order[idx];
    const size_t r = static_cast<size_t>(rel.rule_of(i));
    // urank-lint: allow(kernel-vectorize) — scatter keyed by rule index.
    (*cur)[r] = std::min((*cur)[r] + rel.tuple(i).prob, 1.0);
  }
}

URANK_KERNEL void ChunkSweep::Rebuild(AlignedBuf* out, int skip_rule) const {
  out->assign(1, 1.0);
  const int m = rel.num_rules();
  for (int r = 0; r < m; ++r) {
    if (r == skip_rule) continue;
    const double v = cur[static_cast<size_t>(r)];
    if (v > 0.0) BufConvolveTrial(ops, out, v);
  }
}

URANK_KERNEL const AlignedBuf* ChunkSweep::WithoutRule(int r,
                                                       AlignedBuf* out) const {
  const double v = cur[static_cast<size_t>(r)];
  if (v <= 0.0) return &pmf;
  if (!BufDeconvolveTrial(ops, pmf, v, out)) Rebuild(out, r);
  return out;
}

URANK_KERNEL void ChunkSweep::Flush(int i) {
  const size_t r = static_cast<size_t>(rel.rule_of(i));
  const double old_mass = cur[r];
  if (old_mass > 0.0) {
    if (BufDeconvolveTrial(ops, pmf, old_mass, &scratch)) {
      pmf.swap(scratch);
    } else {
      Rebuild(&scratch, static_cast<int>(r));
      pmf.swap(scratch);
    }
  }
  // Rule mass stays a probability: Validate() bounds each rule's sum
  // by 1 + tolerance, and the sweep only ever adds member masses.
  URANK_DCHECK_PROB(old_mass + rel.tuple(i).prob);
  cur[r] = std::min(old_mass + rel.tuple(i).prob, 1.0);
  if (cur[r] > 0.0) BufConvolveTrial(ops, &pmf, cur[r]);
}

URANK_KERNEL size_t SweepAppearChunk(
    const TupleRelation& rel, const std::vector<int>& order, TiePolicy ties,
    size_t begin, size_t end, const double* entry_mass, KernelArena* arena,
    const std::function<void(int, const AlignedBuf&)>& per_tuple,
    const TupleSweepStopFn* stop) {
  const vk::KernelOps& ops = vk::Active();
  AlignedBuf& cur = arena->Doubles(0);
  AlignedBuf& pmf = arena->Doubles(1);
  AlignedBuf& scratch = arena->Doubles(2);
  AlignedBuf& appear = arena->Doubles(3);
  if (entry_mass != nullptr) {
    cur.assign(entry_mass, static_cast<size_t>(rel.num_rules()));
  } else {
    ReplayTuplePrefix(rel, order, begin, &cur);
  }
  ChunkSweep sweep{rel, ops, cur, pmf, scratch};
  sweep.Rebuild(&pmf, -1);

  size_t pos = begin;
  while (pos < end) {
    size_t run_end = pos + 1;
    if (ties == TiePolicy::kStrictGreater) {
      while (run_end < end &&
             rel.tuple(order[run_end]).score ==
                 rel.tuple(order[pos]).score) {
        ++run_end;
      }
    }
    for (size_t idx = pos; idx < run_end; ++idx) {
      const int i = order[idx];
      per_tuple(i, *sweep.WithoutRule(rel.rule_of(i), &appear));
    }
    for (size_t idx = pos; idx < run_end; ++idx) sweep.Flush(order[idx]);
    pos = run_end;
    if (stop != nullptr && (*stop)(pos, pmf)) return pos;
  }
  return pos;
}

AbsentContext::AbsentContext(const TupleRelation& rel) {
  const int m = rel.num_rules();
  rule_sums.resize(static_cast<size_t>(m));
  pmf_all.assign(1, 1.0);
  for (int r = 0; r < m; ++r) {
    const double v = std::min(rel.rule_prob_sum(r), 1.0);
    rule_sums[static_cast<size_t>(r)] = v;
    if (v > 0.0) PbConvolveTrial(&pmf_all, v);
  }
}

URANK_KERNEL void AbsentContext::ConditionalWorldSize(const vk::KernelOps& ops,
                                                      int r, double cond,
                                                      AlignedBuf* out) const {
  const double v = rule_sums[static_cast<size_t>(r)];
  if (v > 0.0) {
    const size_t n = pmf_all.size() - 1;
    out->resize(n);
    if (!ops.deconvolve_trial(pmf_all.data(), n, v, out->data())) {
      // Deterministic fallback: rebuild the reduced product directly.
      out->assign(1, 1.0);
      for (size_t r2 = 0; r2 < rule_sums.size(); ++r2) {
        if (static_cast<int>(r2) == r) continue;
        if (rule_sums[r2] > 0.0) BufConvolveTrial(ops, out, rule_sums[r2]);
      }
    }
  } else {
    out->assign(pmf_all.data(), pmf_all.size());
  }
  if (cond > 0.0) BufConvolveTrial(ops, out, cond);
}

}  // namespace internal
}  // namespace urank
