// Incremental maintenance of a tuple-level uncertain relation under
// insertions and deletions.
//
// Paper Section 6.2 notes that E[|W|] "can be efficiently maintained in
// O(1) time when D is updated with deletion or insertion of tuples"; this
// module carries that observation through to the whole expected-rank
// computation. A DynamicTupleRanker keeps:
//   * E[|W|] — O(1) per update;
//   * per-exclusion-rule aggregates — O(|rule|) per update;
//   * a probability-mass-by-score index (Fenwick tree over the score
//     universe with a bounded overflow buffer, merged by periodic
//     rebuilds) — O(log N) amortized per update;
// so the expected rank of any single tuple (eq. 8) is answerable in
// O(log N + |rule|) amortized at any time, a full top-k on demand in
// O(N (log N + |rule|)), and the live state can be snapshotted into a
// TupleRelation for the batch algorithms.
//
// Rank semantics follow the paper's Definition 6 (TiePolicy::
// kStrictGreater): ties share a rank. All methods abort on contract
// violations (duplicate ids, unknown ids, over-full rules).

#ifndef URANK_CORE_DYNAMIC_RANKER_H_
#define URANK_CORE_DYNAMIC_RANKER_H_

#include <unordered_map>
#include <vector>

#include "core/ranking.h"
#include "model/tuple_model.h"

namespace urank {
namespace internal {

// Probability mass indexed by score with O(log U) prefix queries under
// dynamic insertion of new score keys: a Fenwick tree over the known
// universe plus a small overflow map for unseen keys, merged into the
// universe once the overflow exceeds a fixed bound.
class MassByScoreIndex {
 public:
  MassByScoreIndex() = default;

  // Adds `delta` (possibly negative) mass at `score`.
  void Add(double score, double delta);

  // Total mass at scores strictly greater than `score`.
  double MassAbove(double score) const;

  // Total mass over all scores.
  double TotalMass() const { return total_; }

 private:
  void Rebuild();
  void FenwickAdd(size_t index, double delta);
  double FenwickSuffix(size_t from) const;  // sum of tree_[from..]

  std::vector<double> universe_;  // sorted distinct score keys
  std::vector<double> tree_;      // Fenwick over universe_ positions
  std::unordered_map<double, double> overflow_;  // keys outside universe_
  double total_ = 0.0;
};

}  // namespace internal

// The dynamic ranker. Not thread-safe; guard externally if shared.
class DynamicTupleRanker {
 public:
  DynamicTupleRanker() = default;

  // Inserts a tuple. `rule_label` groups mutually exclusive tuples
  // (labels are arbitrary non-negative ints); pass a negative label for an
  // independent tuple. Aborts if `id` is already live, prob is outside
  // (0, 1], the score is non-finite, or the rule's mass would exceed 1.
  // O(log N) amortized.
  void Insert(int id, double score, double prob, int rule_label = -1);

  // Removes a live tuple. Aborts if `id` is not live. O(log N) amortized.
  void Erase(int id);

  // Number of live tuples.
  int size() const { return static_cast<int>(by_id_.size()); }

  // Whether `id` is live.
  bool Contains(int id) const { return by_id_.count(id) > 0; }

  // E[|W|]; O(1).
  double ExpectedWorldSize() const { return expected_world_size_; }

  // Expected rank of the live tuple `id` (eq. 8, strict tie policy).
  // Aborts if `id` is not live. O(log N + |rule|) amortized.
  double ExpectedRank(int id) const;

  // Current top-k by expected rank (ties by id). Requires k >= 1.
  // O(N (log N + |rule|)).
  std::vector<RankedTuple> TopK(int k) const;

  // Materializes the live state as a TupleRelation (batch algorithms,
  // persistence). O(N log N).
  TupleRelation Snapshot() const;

 private:
  struct Entry {
    double score = 0.0;
    double prob = 0.0;
    int rule_label = -1;  // negative = independent
  };

  // Members of each labelled rule (live ids) and their total mass.
  struct RuleState {
    std::vector<int> ids;
    double mass = 0.0;
  };

  double ExpectedRankOf(const Entry& e, int id) const;

  std::unordered_map<int, Entry> by_id_;
  std::unordered_map<int, RuleState> rules_;
  internal::MassByScoreIndex mass_index_;
  double expected_world_size_ = 0.0;
};

}  // namespace urank

#endif  // URANK_CORE_DYNAMIC_RANKER_H_
