#include "core/quantile_rank.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/engine/prepared_relation.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {
namespace {

std::vector<int> IdsInOrder(int n, const std::function<int(int)>& id_of) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = id_of(i);
  return ids;
}

std::vector<double> ToDouble(const std::vector<int>& v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

URANK_KERNEL
int QuantileFromPmf(std::span<const double> pmf, double phi) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  URANK_CHECK_MSG(!pmf.empty(), "pmf must be non-empty");
  URANK_DCHECK_NORMALIZED(pmf);
  double cdf = 0.0;
  for (size_t r = 0; r < pmf.size(); ++r) {
    // Early-exit threshold scan: a vectorized prefix sum would reassociate
    // and could flip the >= phi comparison at round-off boundaries.
    // urank-lint: allow(kernel-vectorize)
    cdf += pmf[r];
    if (cdf >= phi) return static_cast<int>(r);
  }
  return static_cast<int>(pmf.size()) - 1;  // round-off guard
}

int QuantileFromPmf(const std::vector<double>& pmf, double phi) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return QuantileFromPmf(std::span<const double>(pmf), phi);
}

RankDistributionSummary SummarizeRankDistribution(
    const std::vector<double>& pmf) {
  URANK_CHECK_MSG(!pmf.empty(), "pmf must be non-empty");
  RankDistributionSummary s;
  double mass = 0.0;
  double best = -1.0;
  int min_rank = -1, max_rank = 0;
  for (size_t r = 0; r < pmf.size(); ++r) {
    const double p = pmf[r];
    URANK_CHECK_MSG(p >= -1e-12, "pmf entries must be non-negative");
    mass += p;
    s.mean += static_cast<double>(r) * p;
    if (p > best) {
      best = p;
      s.mode = static_cast<int>(r);
    }
    if (p > 0.0) {
      if (min_rank < 0) min_rank = static_cast<int>(r);
      max_rank = static_cast<int>(r);
    }
  }
  URANK_CHECK_MSG(mass > 0.999999 && mass < 1.000001,
                  "pmf must sum to ~1");
  for (size_t r = 0; r < pmf.size(); ++r) {
    const double d = static_cast<double>(r) - s.mean;
    // O(N) summary statistic outside the DP hot path; keeps the documented
    // left-to-right accumulation.
    // urank-lint: allow(kernel-vectorize)
    s.variance += d * d * pmf[r];
  }
  s.stddev = std::sqrt(std::max(s.variance, 0.0));
  s.median = QuantileFromPmf(pmf, 0.5);
  s.q25 = QuantileFromPmf(pmf, 0.25);
  s.q75 = QuantileFromPmf(pmf, 0.75);
  s.min_rank = std::max(min_rank, 0);
  s.max_rank = max_rank;
  return s;
}

std::vector<int> AttrQuantileRanks(const AttrRelation& rel, double phi,
                                   TiePolicy ties) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  std::vector<int> ranks(static_cast<size_t>(rel.size()), 0);
  // One DP per tuple against pdfs sorted once; the distribution and DP
  // buffers are reused across tuples, so memory stays O(N + s) rather
  // than materializing the full N×N distribution matrix.
  const std::vector<internal::SortedPdf> pdfs = BuildSortedPdfs(rel);
  internal::AlignedBuf pmf_scratch;
  std::vector<double> dist;
  for (int i = 0; i < rel.size(); ++i) {
    AttrRankDistributionInto(rel, pdfs, i, ties, &pmf_scratch, &dist);
    ranks[static_cast<size_t>(i)] = QuantileFromPmf(dist, phi);
  }
  return ranks;
}

std::vector<int> TupleQuantileRanks(const TupleRelation& rel, double phi,
                                    TiePolicy ties) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  std::vector<int> ranks(static_cast<size_t>(rel.size()), 0);
  ForEachTupleRankDistribution(
      rel, ties, [&](int i, std::span<const double> dist) {
        ranks[static_cast<size_t>(i)] = QuantileFromPmf(dist, phi);
      });
  return ranks;
}

std::vector<int> AttrQuantileRanks(const PreparedAttrRelation& prepared,
                                   double phi, TiePolicy ties) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return AttrQuantileRanks(prepared, phi, ties, ParallelismOptions{},
                           nullptr);
}

std::vector<int> AttrQuantileRanks(const PreparedAttrRelation& prepared,
                                   double phi, TiePolicy ties,
                                   const ParallelismOptions& par,
                                   KernelReport* report) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  const StatKey key{StatKey::Kind::kQuantileRank, 0, phi, ties};
  const auto stat = prepared.CachedStat(key, [&] {
    const auto dists = prepared.RankDistributions(ties, par, report);
    std::vector<double> ranks(static_cast<size_t>(prepared.size()), 0.0);
    for (int i = 0; i < prepared.size(); ++i) {
      // Per-tuple statistic gather, not an elementwise probability sweep.
      // urank-lint: allow(kernel-vectorize)
      ranks[static_cast<size_t>(i)] = static_cast<double>(
          QuantileFromPmf((*dists)[static_cast<size_t>(i)], phi));
    }
    return ranks;
  });
  return std::vector<int>(stat->begin(), stat->end());
}

std::vector<int> TupleQuantileRanks(const PreparedTupleRelation& prepared,
                                    double phi, TiePolicy ties) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return TupleQuantileRanks(prepared, phi, ties, ParallelismOptions{},
                            nullptr);
}

std::vector<int> TupleQuantileRanks(const PreparedTupleRelation& prepared,
                                    double phi, TiePolicy ties,
                                    const ParallelismOptions& par,
                                    KernelReport* report) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  const StatKey key{StatKey::Kind::kQuantileRank, 0, phi, ties};
  const auto stat = prepared.CachedStat(key, [&] {
    std::vector<double> ranks(static_cast<size_t>(prepared.size()), 0.0);
    // Chunk callbacks write disjoint positions, so concurrent chunks need
    // no further coordination. The memoized entry table lets each chunk
    // start from its precomputed prefix state.
    const auto entries = prepared.SweepEntries(ties);
    ForEachTupleRankDistribution(
        prepared.relation(), prepared.rank_order(), ties, par, report,
        [&](int /*chunk*/, int i, std::span<const double> dist) {
          ranks[static_cast<size_t>(i)] =
              static_cast<double>(QuantileFromPmf(dist, phi));
        },
        entries.get());
    return ranks;
  });
  return std::vector<int>(stat->begin(), stat->end());
}

std::vector<int> AttrMedianRanks(const AttrRelation& rel, TiePolicy ties) {
  return AttrQuantileRanks(rel, 0.5, ties);
}

std::vector<int> TupleMedianRanks(const TupleRelation& rel, TiePolicy ties) {
  return TupleQuantileRanks(rel, 0.5, ties);
}

std::vector<RankedTuple> AttrQuantileRankTopK(const AttrRelation& rel, int k,
                                              double phi, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  std::vector<int> ids =
      IdsInOrder(rel.size(), [&](int i) { return rel.tuple(i).id; });
  return TopKByStatistic(ids, ToDouble(AttrQuantileRanks(rel, phi, ties)), k);
}

std::vector<RankedTuple> TupleQuantileRankTopK(const TupleRelation& rel,
                                               int k, double phi,
                                               TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  std::vector<int> ids =
      IdsInOrder(rel.size(), [&](int i) { return rel.tuple(i).id; });
  return TopKByStatistic(ids, ToDouble(TupleQuantileRanks(rel, phi, ties)),
                         k);
}

std::vector<RankedTuple> AttrQuantileRankTopK(
    const PreparedAttrRelation& prepared, int k, double phi,
    TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return TopKByStatistic(prepared.ids(),
                         ToDouble(AttrQuantileRanks(prepared, phi, ties)),
                         k);
}

std::vector<RankedTuple> TupleQuantileRankTopK(
    const PreparedTupleRelation& prepared, int k, double phi,
    TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return TopKByStatistic(prepared.ids(),
                         ToDouble(TupleQuantileRanks(prepared, phi, ties)),
                         k);
}

}  // namespace urank
