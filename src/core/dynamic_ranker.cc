#include "core/dynamic_ranker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace urank {
namespace internal {
namespace {

// Overflow keys tolerated before folding them into the Fenwick universe.
// Queries scan the overflow linearly, so this bounds the per-query cost.
constexpr size_t kMaxOverflow = 128;

}  // namespace

void MassByScoreIndex::Add(double score, double delta) {
  URANK_DCHECK_MSG(std::isfinite(score) && std::isfinite(delta),
                   "MassByScoreIndex::Add with non-finite input");
  total_ += delta;
  // Deletions can only remove mass that was previously inserted, so the
  // running total never goes meaningfully negative.
  URANK_DCHECK_MSG(total_ >= -1e-9, "mass index total went negative");
  const auto it =
      std::lower_bound(universe_.begin(), universe_.end(), score);
  if (it != universe_.end() && *it == score) {
    FenwickAdd(static_cast<size_t>(it - universe_.begin()), delta);
    return;
  }
  overflow_[score] += delta;
  if (overflow_[score] == 0.0) overflow_.erase(score);
  if (overflow_.size() > kMaxOverflow) Rebuild();
}

double MassByScoreIndex::MassAbove(double score) const {
  const auto it =
      std::upper_bound(universe_.begin(), universe_.end(), score);
  double mass = FenwickSuffix(static_cast<size_t>(it - universe_.begin()));
  for (const auto& [key, value] : overflow_) {
    if (key > score) mass += value;
  }
  return mass;
}

void MassByScoreIndex::Rebuild() {
  // Collect the current per-key masses, merge overflow keys into the
  // universe, and rebuild the Fenwick from scratch.
  std::vector<std::pair<double, double>> entries;
  entries.reserve(universe_.size() + overflow_.size());
  for (size_t i = 0; i < universe_.size(); ++i) {
    // Point mass at position i = prefix(i) - prefix(i-1); recover it from
    // suffix sums to avoid a second accumulator array.
    const double point = FenwickSuffix(i) - FenwickSuffix(i + 1);
    if (point != 0.0) entries.emplace_back(universe_[i], point);
  }
  for (const auto& [key, value] : overflow_) {
    if (value != 0.0) entries.emplace_back(key, value);
  }
  overflow_.clear();
  std::sort(entries.begin(), entries.end());
  universe_.clear();
  universe_.reserve(entries.size());
  for (const auto& [key, value] : entries) universe_.push_back(key);
  tree_.assign(universe_.size() + 1, 0.0);
  for (size_t i = 0; i < entries.size(); ++i) {
    FenwickAdd(i, entries[i].second);
  }
}

void MassByScoreIndex::FenwickAdd(size_t index, double delta) {
  for (size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

double MassByScoreIndex::FenwickSuffix(size_t from) const {
  // prefix(i) = sum of positions [0, i); suffix = prefix(end) - prefix.
  auto prefix = [&](size_t count) {
    double sum = 0.0;
    for (size_t i = count; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  };
  const size_t n = universe_.size();
  if (from >= n) return 0.0;
  return prefix(n) - prefix(from);
}

}  // namespace internal

void DynamicTupleRanker::Insert(int id, double score, double prob,
                                int rule_label) {
  URANK_CHECK_MSG(by_id_.count(id) == 0, "Insert: id is already live");
  URANK_CHECK_MSG(prob > 0.0 && prob <= 1.0,
                  "Insert: prob must be in (0,1]");
  URANK_CHECK_MSG(std::isfinite(score), "Insert: score must be finite");
  if (rule_label >= 0) {
    RuleState& rule = rules_[rule_label];
    URANK_CHECK_MSG(rule.mass + prob <= 1.0 + 1e-9,
                    "Insert: rule probability mass would exceed 1");
    rule.ids.push_back(id);
    rule.mass += prob;
  }
  by_id_[id] = {score, prob, rule_label};
  mass_index_.Add(score, prob);
  expected_world_size_ += prob;
}

void DynamicTupleRanker::Erase(int id) {
  const auto it = by_id_.find(id);
  URANK_CHECK_MSG(it != by_id_.end(), "Erase: id is not live");
  const Entry e = it->second;
  by_id_.erase(it);
  if (e.rule_label >= 0) {
    RuleState& rule = rules_[e.rule_label];
    rule.ids.erase(std::find(rule.ids.begin(), rule.ids.end(), id));
    rule.mass -= e.prob;
    URANK_DCHECK_MSG(rule.mass >= -1e-9, "rule mass went negative");
    if (rule.ids.empty()) rules_.erase(e.rule_label);
  }
  mass_index_.Add(e.score, -e.prob);
  expected_world_size_ -= e.prob;
}

double DynamicTupleRanker::ExpectedRankOf(const Entry& e, int id) const {
  // Eq. (8): r = p (q - sameAbove) + S + (1-p)(E|W| - p - S).
  const double above = mass_index_.MassAbove(e.score);
  double same_above = 0.0;
  double same_other = 0.0;
  if (e.rule_label >= 0) {
    const RuleState& rule = rules_.at(e.rule_label);
    for (int other : rule.ids) {
      if (other == id) continue;
      const Entry& oe = by_id_.at(other);
      same_other += oe.prob;
      if (oe.score > e.score) same_above += oe.prob;
    }
  }
  URANK_DCHECK_PROB(e.prob);
  URANK_DCHECK_MSG(same_above <= same_other + 1e-9,
                   "rule mass above exceeds total rule mass");
  const double rank = e.prob * (above - same_above) + same_other +
                      (1.0 - e.prob) * (expected_world_size_ - e.prob -
                                        same_other);
  // Same bound as the batch kernel: eq. (8) stays within [0, N].
  URANK_DCHECK_MSG(
      rank >= -1e-9 * static_cast<double>(size() + 1) &&
          rank <= static_cast<double>(size()) +
                      1e-9 * static_cast<double>(size() + 1),
      "dynamic expected rank outside [0, N]");
  return rank;
}

double DynamicTupleRanker::ExpectedRank(int id) const {
  const auto it = by_id_.find(id);
  URANK_CHECK_MSG(it != by_id_.end(), "ExpectedRank: id is not live");
  return ExpectedRankOf(it->second, id);
}

std::vector<RankedTuple> DynamicTupleRanker::TopK(int k) const {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<int> ids;
  std::vector<double> ranks;
  ids.reserve(by_id_.size());
  ranks.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) {
    ids.push_back(id);
    ranks.push_back(ExpectedRankOf(entry, id));
  }
  return TopKByStatistic(ids, ranks, k);
}

TupleRelation DynamicTupleRanker::Snapshot() const {
  // Deterministic tuple order (by id) so snapshots are reproducible.
  std::vector<int> ids;
  ids.reserve(by_id_.size());
  for (const auto& [id, entry] : by_id_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::vector<TLTuple> tuples;
  tuples.reserve(ids.size());
  std::unordered_map<int, int> index_of;
  for (int id : ids) {
    const Entry& e = by_id_.at(id);
    index_of[id] = static_cast<int>(tuples.size());
    tuples.push_back({id, e.score, e.prob});
  }
  std::vector<std::vector<int>> rule_groups;
  std::vector<int> labels;
  labels.reserve(rules_.size());
  for (const auto& [label, rule] : rules_) labels.push_back(label);
  std::sort(labels.begin(), labels.end());
  for (int label : labels) {
    const RuleState& rule = rules_.at(label);
    if (rule.ids.size() < 2) continue;  // singletons become implicit rules
    std::vector<int> group;
    group.reserve(rule.ids.size());
    for (int id : rule.ids) group.push_back(index_of.at(id));
    std::sort(group.begin(), group.end());
    rule_groups.push_back(std::move(group));
  }
  return TupleRelation(std::move(tuples), std::move(rule_groups));
}

}  // namespace urank
