// Score-value synthesis shared by the attribute-level and tuple-level
// workload generators.
//
// Mirrors the paper's synthetic workloads: score universes drawn from a
// uniform, normal ("norm"), or Zipfian ("zipf") distribution, and existence
// probabilities that are independent of, positively correlated with, or
// anti-correlated with the score.

#ifndef URANK_GEN_SCORE_GEN_H_
#define URANK_GEN_SCORE_GEN_H_

#include <vector>

#include "util/rng.h"

namespace urank {

// Marginal distribution of generated score values.
enum class ScoreDistribution {
  kUniform,  // uniform on [0, scale)
  kNormal,   // normal centred at scale/2, stddev scale/8, clamped to [0, scale]
  kZipf,     // scale / zipf_rank with rank ~ Zipf(theta) over {1..n}
};

// Relationship between a tuple's score and its existence probability.
enum class Correlation {
  kIndependent,  // probability drawn independently of score
  kPositive,     // higher scores get higher probabilities
  kNegative,     // higher scores get lower probabilities
};

// Draws `n` scores from `dist`. `scale` stretches the universe;
// `zipf_theta` is the skew for kZipf (ignored otherwise). Requires n >= 0,
// scale > 0, zipf_theta >= 0.
std::vector<double> GenerateScores(int n, ScoreDistribution dist, double scale,
                                   double zipf_theta, Rng& rng);

// Maps scores to existence probabilities in [prob_lo, prob_hi] under the
// given correlation mode. Independent mode ignores the scores. Correlated
// modes rank the scores and blend the (anti-)rank percentile with uniform
// noise, so the correlation is strong but not degenerate. Requires
// 0 < prob_lo <= prob_hi <= 1.
std::vector<double> GenerateProbabilities(const std::vector<double>& scores,
                                          Correlation correlation,
                                          double prob_lo, double prob_hi,
                                          Rng& rng);

// Human-readable names for bench/table output.
const char* ToString(ScoreDistribution dist);
const char* ToString(Correlation correlation);

}  // namespace urank

#endif  // URANK_GEN_SCORE_GEN_H_
