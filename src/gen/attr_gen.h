// Synthetic attribute-level relations (paper Section 8 workloads).
//
// Each tuple gets a discrete score pdf: a centre drawn from the configured
// score distribution, `pdf_size` distinct support values spread around the
// centre, and probabilities drawn from the probability simplex. This mirrors
// the paper's synthetic uncertain relations with bounded pdf size s.

#ifndef URANK_GEN_ATTR_GEN_H_
#define URANK_GEN_ATTR_GEN_H_

#include <cstdint>

#include "gen/score_gen.h"
#include "model/attr_model.h"

namespace urank {

// Knobs for GenerateAttrRelation. Defaults produce the paper's baseline
// workload: N=10k uniform scores, s=5.
struct AttrGenConfig {
  int num_tuples = 10000;   // N; >= 0
  int pdf_size = 5;         // s, support points per tuple; >= 1
  ScoreDistribution score_dist = ScoreDistribution::kUniform;
  double zipf_theta = 1.0;  // skew when score_dist == kZipf
  double score_scale = 1000.0;  // score universe is ~[0, score_scale]
  double value_spread = 50.0;   // half-width of a tuple's support around its
                                // centre; >= 0
  uint64_t seed = 1;
};

// Generates a valid attribute-level relation with tuple ids 0..N-1.
AttrRelation GenerateAttrRelation(const AttrGenConfig& config);

}  // namespace urank

#endif  // URANK_GEN_ATTR_GEN_H_
