// Synthetic tuple-level relations with exclusion rules (paper Section 8
// workloads).
//
// Scores come from the configured distribution; existence probabilities come
// from GenerateProbabilities under the chosen score/probability correlation;
// tuples are then partitioned into exclusion rules. Rule membership is
// random, rule sizes are uniform in [2, max_rule_size], and a configurable
// fraction of tuples participates in multi-tuple rules (the rest get
// singleton rules). Probabilities within a rule are rescaled when they sum
// above 1 so the rule remains a valid distribution.

#ifndef URANK_GEN_TUPLE_GEN_H_
#define URANK_GEN_TUPLE_GEN_H_

#include <cstdint>

#include "gen/score_gen.h"
#include "model/tuple_model.h"

namespace urank {

// Knobs for GenerateTupleRelation. Defaults produce the paper's baseline
// tuple-level workload: N=10k, uniform scores, independent probabilities in
// [0.2, 1], 30% of tuples in rules of size up to 3.
struct TupleGenConfig {
  int num_tuples = 10000;  // N; >= 0
  ScoreDistribution score_dist = ScoreDistribution::kUniform;
  double zipf_theta = 1.0;
  double score_scale = 1000.0;
  Correlation correlation = Correlation::kIndependent;
  double prob_lo = 0.2;  // existence probabilities drawn from [prob_lo,
  double prob_hi = 1.0;  // prob_hi]; 0 < prob_lo <= prob_hi <= 1
  double multi_rule_fraction = 0.3;  // fraction of tuples in multi-tuple
                                     // rules; in [0, 1]
  int max_rule_size = 3;             // >= 2 when multi_rule_fraction > 0
  uint64_t seed = 1;
};

// Generates a valid tuple-level relation with tuple ids 0..N-1.
TupleRelation GenerateTupleRelation(const TupleGenConfig& config);

}  // namespace urank

#endif  // URANK_GEN_TUPLE_GEN_H_
