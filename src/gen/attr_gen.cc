#include "gen/attr_gen.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace urank {

AttrRelation GenerateAttrRelation(const AttrGenConfig& config) {
  URANK_CHECK_MSG(config.num_tuples >= 0, "num_tuples must be >= 0");
  URANK_CHECK_MSG(config.pdf_size >= 1, "pdf_size must be >= 1");
  URANK_CHECK_MSG(config.value_spread >= 0.0, "value_spread must be >= 0");
  Rng rng(config.seed);
  std::vector<double> centres =
      GenerateScores(config.num_tuples, config.score_dist, config.score_scale,
                     config.zipf_theta, rng);
  std::vector<AttrTuple> tuples;
  tuples.reserve(static_cast<size_t>(config.num_tuples));
  for (int i = 0; i < config.num_tuples; ++i) {
    AttrTuple t;
    t.id = i;
    const double centre = centres[static_cast<size_t>(i)];
    std::unordered_set<double> used;
    std::vector<double> probs =
        rng.RandomSimplex(config.pdf_size, 1.0);
    t.pdf.reserve(static_cast<size_t>(config.pdf_size));
    for (int l = 0; l < config.pdf_size; ++l) {
      // Support values must be distinct within a tuple and strictly
      // positive (the pruning algorithms' Markov bounds require positive
      // scores); nudge duplicates, floor at a small epsilon.
      double v = config.value_spread > 0.0
                     ? centre + rng.Uniform(-config.value_spread,
                                            config.value_spread)
                     : centre;
      v = std::max(v, 1e-3);
      // Separate duplicates by a relative epsilon (not a single ulp, so
      // downstream order-preserving shifts keep them distinct).
      while (!used.insert(v).second) {
        v += std::max(1e-9, v * 1e-9);
      }
      t.pdf.push_back({v, probs[static_cast<size_t>(l)]});
    }
    tuples.push_back(std::move(t));
  }
  return AttrRelation(std::move(tuples));
}

}  // namespace urank
