#include "gen/score_gen.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/zipf.h"

namespace urank {

std::vector<double> GenerateScores(int n, ScoreDistribution dist, double scale,
                                   double zipf_theta, Rng& rng) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(scale > 0.0, "scale must be > 0");
  std::vector<double> scores(static_cast<size_t>(n));
  switch (dist) {
    case ScoreDistribution::kUniform:
      for (double& s : scores) s = rng.Uniform(0.0, scale);
      break;
    case ScoreDistribution::kNormal:
      for (double& s : scores) {
        s = std::clamp(rng.Normal(scale / 2.0, scale / 8.0), 0.0, scale);
      }
      break;
    case ScoreDistribution::kZipf: {
      if (n == 0) break;
      ZipfDistribution zipf(n, zipf_theta);
      for (double& s : scores) {
        s = scale / static_cast<double>(zipf.Sample(rng));
      }
      break;
    }
  }
  return scores;
}

std::vector<double> GenerateProbabilities(const std::vector<double>& scores,
                                          Correlation correlation,
                                          double prob_lo, double prob_hi,
                                          Rng& rng) {
  URANK_CHECK_MSG(prob_lo > 0.0 && prob_lo <= prob_hi && prob_hi <= 1.0,
                  "require 0 < prob_lo <= prob_hi <= 1");
  const size_t n = scores.size();
  std::vector<double> probs(n);
  if (correlation == Correlation::kIndependent) {
    for (double& p : probs) p = rng.Uniform(prob_lo, prob_hi + 1e-12);
    for (double& p : probs) p = std::min(p, prob_hi);
    return probs;
  }
  // Percentile of each score among all scores (average-free: rank / (n-1)).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    return a < b;
  });
  for (size_t pos = 0; pos < n; ++pos) {
    double pct = n > 1 ? static_cast<double>(pos) / static_cast<double>(n - 1)
                       : 0.5;
    if (correlation == Correlation::kNegative) pct = 1.0 - pct;
    // 80% signal, 20% noise keeps the correlation strong but not exact.
    const double blended = 0.8 * pct + 0.2 * rng.Uniform01();
    probs[order[pos]] = prob_lo + (prob_hi - prob_lo) * blended;
  }
  return probs;
}

const char* ToString(ScoreDistribution dist) {
  switch (dist) {
    case ScoreDistribution::kUniform:
      return "uniform";
    case ScoreDistribution::kNormal:
      return "normal";
    case ScoreDistribution::kZipf:
      return "zipf";
  }
  return "?";
}

const char* ToString(Correlation correlation) {
  switch (correlation) {
    case Correlation::kIndependent:
      return "independent";
    case Correlation::kPositive:
      return "positive";
    case Correlation::kNegative:
      return "negative";
  }
  return "?";
}

}  // namespace urank
