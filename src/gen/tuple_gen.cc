#include "gen/tuple_gen.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace urank {

TupleRelation GenerateTupleRelation(const TupleGenConfig& config) {
  URANK_CHECK_MSG(config.num_tuples >= 0, "num_tuples must be >= 0");
  URANK_CHECK_MSG(
      config.multi_rule_fraction >= 0.0 && config.multi_rule_fraction <= 1.0,
      "multi_rule_fraction must be in [0,1]");
  URANK_CHECK_MSG(config.multi_rule_fraction == 0.0 || config.max_rule_size >= 2,
                  "max_rule_size must be >= 2 for multi-tuple rules");
  Rng rng(config.seed);
  std::vector<double> scores =
      GenerateScores(config.num_tuples, config.score_dist, config.score_scale,
                     config.zipf_theta, rng);
  std::vector<double> probs = GenerateProbabilities(
      scores, config.correlation, config.prob_lo, config.prob_hi, rng);

  std::vector<TLTuple> tuples;
  tuples.reserve(static_cast<size_t>(config.num_tuples));
  for (int i = 0; i < config.num_tuples; ++i) {
    tuples.push_back({i, scores[static_cast<size_t>(i)],
                      probs[static_cast<size_t>(i)]});
  }

  // Pick which tuples join multi-tuple rules, then cut that pool into
  // random-size groups.
  std::vector<int> pool(static_cast<size_t>(config.num_tuples));
  std::iota(pool.begin(), pool.end(), 0);
  rng.Shuffle(pool);
  const int in_rules = static_cast<int>(config.multi_rule_fraction *
                                        static_cast<double>(config.num_tuples));
  std::vector<std::vector<int>> rules;
  int consumed = 0;
  while (consumed + 2 <= in_rules) {
    const int want =
        static_cast<int>(rng.UniformInt(2, config.max_rule_size));
    const int size = std::min(want, in_rules - consumed);
    if (size < 2) break;
    std::vector<int> members(pool.begin() + consumed,
                             pool.begin() + consumed + size);
    consumed += size;
    // Rescale member probabilities when the rule would be over-full.
    double sum = 0.0;
    for (int idx : members) sum += tuples[static_cast<size_t>(idx)].prob;
    if (sum > 1.0) {
      const double scale = (1.0 - 1e-6) / sum;
      for (int idx : members) tuples[static_cast<size_t>(idx)].prob *= scale;
    }
    rules.push_back(std::move(members));
  }
  // Remaining tuples get implicit singleton rules inside TupleRelation.
  return TupleRelation(std::move(tuples), std::move(rules));
}

}  // namespace urank
