// Side-by-side comparison of every ranking semantics in the library on the
// paper's worked example (Fig. 4), plus a live demonstration of which of
// the five properties each definition violates (paper Fig. 5).
//
//   $ ./semantics_comparison

#include <cstdio>
#include <string>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "core/properties.h"
#include "core/quantile_rank.h"
#include "core/ranking.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "model/tuple_model.h"
#include "util/table.h"

namespace {

std::string Join(const std::vector<int>& ids) {
  std::string out;
  for (int id : ids) {
    if (!out.empty()) out.append(", ");
    if (id >= 0) {
      out.append("t");
      out.append(std::to_string(id));
    } else {
      out.append("-");
    }
  }
  if (out.empty()) out = "(empty)";
  return out;
}

const char* Mark(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace

int main() {
  // Paper Fig. 4: scores descending t1..t4, t2/t4 mutually exclusive.
  urank::TupleRelation rel(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});

  std::printf("Relation (paper Fig. 4): t1(100,.4) t2(90,.5) t3(80,1) "
              "t4(70,.5); rule {t2,t4}\n\n");

  urank::Table answers("top-k answers per semantics",
                       {"semantics", "k=1", "k=2", "k=3"});
  struct NamedSemantics {
    const char* name;
    urank::TupleSemanticsFn fn;
  };
  const std::vector<NamedSemantics> all = {
      {"expected rank",
       [](const urank::TupleRelation& r, int k) {
         return urank::IdsOf(urank::TupleExpectedRankTopK(r, k));
       }},
      {"median rank",
       [](const urank::TupleRelation& r, int k) {
         return urank::IdsOf(urank::TupleQuantileRankTopK(r, k, 0.5));
       }},
      {"0.75-quantile rank",
       [](const urank::TupleRelation& r, int k) {
         return urank::IdsOf(urank::TupleQuantileRankTopK(r, k, 0.75));
       }},
      {"U-Topk",
       [](const urank::TupleRelation& r, int k) {
         return urank::TupleUTopK(r, k).ids;
       }},
      {"U-kRanks",
       [](const urank::TupleRelation& r, int k) {
         return urank::TupleUKRanks(r, k);
       }},
      {"PT-k (p=0.3)",
       [](const urank::TupleRelation& r, int k) {
         return urank::TuplePTk(r, k, 0.3);
       }},
      {"Global-Topk",
       [](const urank::TupleRelation& r, int k) {
         return urank::TupleGlobalTopK(r, k);
       }},
      {"expected score",
       [](const urank::TupleRelation& r, int k) {
         return urank::IdsOf(urank::TupleExpectedScoreTopK(r, k));
       }},
  };

  for (const auto& semantics : all) {
    answers.AddRow({semantics.name, Join(semantics.fn(rel, 1)),
                    Join(semantics.fn(rel, 2)), Join(semantics.fn(rel, 3))});
  }
  answers.Print();

  std::printf("\nNote how U-Topk's top-1 (t1) vanishes from its top-2, and "
              "U-kRanks repeats\ntuples / leaves rank 4 empty — the paper's "
              "containment and unique-ranking\ncounterexamples.\n\n");

  urank::Table props("property check (paper Fig. 5)",
                     {"semantics", "exact-k", "containment", "unique",
                      "value-inv", "stability"});
  urank::PropertyCheckOptions options;
  options.max_k = 4;
  options.stability_trials = 16;
  for (const auto& semantics : all) {
    const urank::PropertyReport report =
        urank::CheckTupleProperties(semantics.fn, rel, options);
    props.AddRow({semantics.name, Mark(report.exact_k),
                  Mark(report.containment), Mark(report.unique_rank),
                  Mark(report.value_invariance), Mark(report.stability)});
  }
  props.Print();
  std::printf("\n(\"NO\" = a violation was exhibited on this instance; "
              "absence of a violation on\none instance does not prove the "
              "property in general.)\n");
  return 0;
}
