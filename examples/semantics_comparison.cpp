// Side-by-side comparison of every ranking semantics in the library on the
// paper's worked example (Fig. 4), plus a live demonstration of which of
// the five properties each definition violates (paper Fig. 5).
//
// All queries go through the QueryEngine: the relation is prepared once
// and the whole answers table is produced by one RunBatch over shared
// state. The property checker re-ranks mutated copies of the relation, so
// its callback prepares a throwaway engine per invocation.
//
//   $ ./semantics_comparison

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/properties.h"
#include "model/tuple_model.h"
#include "util/table.h"

namespace {

std::string Join(const std::vector<int>& ids) {
  std::string out;
  for (int id : ids) {
    if (!out.empty()) out.append(", ");
    if (id >= 0) {
      out.append("t");
      out.append(std::to_string(id));
    } else {
      out.append("-");
    }
  }
  if (out.empty()) out = "(empty)";
  return out;
}

const char* Mark(bool ok) { return ok ? "yes" : "NO"; }

// One row of the comparison: a display name plus the query parameters
// (k is filled in per column).
struct NamedSemantics {
  const char* name;
  urank::RankingQuery query;
};

urank::RankingQuery MakeQuery(urank::RankingSemantics semantics,
                              double phi = 0.5, double threshold = 0.5) {
  urank::RankingQuery query;
  query.semantics = semantics;
  query.phi = phi;
  query.threshold = threshold;
  return query;
}

std::vector<NamedSemantics> AllSemantics() {
  using urank::RankingSemantics;
  return {
      {"expected rank", MakeQuery(RankingSemantics::kExpectedRank)},
      {"median rank", MakeQuery(RankingSemantics::kMedianRank)},
      {"0.75-quantile rank",
       MakeQuery(RankingSemantics::kQuantileRank, 0.75)},
      {"U-Topk", MakeQuery(RankingSemantics::kUTopk)},
      {"U-kRanks", MakeQuery(RankingSemantics::kUKRanks)},
      {"PT-k (p=0.3)", MakeQuery(RankingSemantics::kPTk, 0.5, 0.3)},
      {"Global-Topk", MakeQuery(RankingSemantics::kGlobalTopk)},
      {"expected score", MakeQuery(RankingSemantics::kExpectedScore)},
  };
}

}  // namespace

int main() {
  // Paper Fig. 4: scores descending t1..t4, t2/t4 mutually exclusive.
  urank::TupleRelation rel(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});

  std::printf("Relation (paper Fig. 4): t1(100,.4) t2(90,.5) t3(80,1) "
              "t4(70,.5); rule {t2,t4}\n\n");

  const std::vector<NamedSemantics> all = AllSemantics();

  // Prepare once, then answer every (semantics, k) cell from one batch
  // over the shared prepared state.
  const urank::QueryEngine engine(rel);
  const std::vector<int> ks = {1, 2, 3};
  std::vector<urank::QueryRequest> batch;
  for (const NamedSemantics& semantics : all) {
    for (int k : ks) {
      urank::QueryRequest request;
      request.options = semantics.query;
      request.options.k = k;
      batch.push_back(request);
    }
  }
  const std::vector<urank::QueryResult> results = engine.RunBatch(batch);

  urank::Table answers("top-k answers per semantics",
                       {"semantics", "k=1", "k=2", "k=3"});
  for (size_t s = 0; s < all.size(); ++s) {
    std::vector<std::string> row = {all[s].name};
    for (size_t c = 0; c < ks.size(); ++c) {
      row.push_back(Join(results[s * ks.size() + c].answer.ids));
    }
    answers.AddRow(row);
  }
  answers.Print();

  std::printf("\nNote how U-Topk's top-1 (t1) vanishes from its top-2, and "
              "U-kRanks repeats\ntuples / leaves rank 4 empty — the paper's "
              "containment and unique-ranking\ncounterexamples.\n\n");

  urank::Table props("property check (paper Fig. 5)",
                     {"semantics", "exact-k", "containment", "unique",
                      "value-inv", "stability"});
  urank::PropertyCheckOptions options;
  options.max_k = 4;
  options.stability_trials = 16;
  for (const NamedSemantics& semantics : all) {
    // The checker perturbs the relation, so each call prepares fresh
    // state; capture the query shape and fill in k per invocation.
    const urank::RankingQuery base = semantics.query;
    const urank::TupleSemanticsFn fn = [base](const urank::TupleRelation& r,
                                              int k) {
      urank::RankingQuery query = base;
      query.k = k;
      return urank::QueryEngine(r).Run(query).answer.ids;
    };
    const urank::PropertyReport report =
        urank::CheckTupleProperties(fn, rel, options);
    props.AddRow({semantics.name, Mark(report.exact_k),
                  Mark(report.containment), Mark(report.unique_rank),
                  Mark(report.value_invariance), Mark(report.stability)});
  }
  props.Print();
  std::printf("\n(\"NO\" = a violation was exhibited on this instance; "
              "absence of a violation on\none instance does not prove the "
              "property in general.)\n");
  return 0;
}
