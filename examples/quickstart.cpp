// Quickstart: build a tiny uncertain relation in each model and answer a
// top-k query by expected rank — the paper's Figs. 2 and 4 end to end.
//
//   $ ./quickstart

#include <cstdio>

#include "core/expected_rank_attr.h"  // urank-lint: allow(engine-api)
#include "core/expected_rank_tuple.h"  // urank-lint: allow(engine-api)
#include "core/quantile_rank.h"  // urank-lint: allow(engine-api)
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace {

void PrintRanked(const char* title,
                 const std::vector<urank::RankedTuple>& ranked) {
  std::printf("%s\n", title);
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    std::printf("  #%zu: tuple t%d (statistic %.3f)\n", pos + 1,
                ranked[pos].id, ranked[pos].statistic);
  }
}

}  // namespace

int main() {
  // ---- Attribute-level model: every tuple exists, its score is a small
  // discrete pdf (paper Fig. 2).
  urank::AttrRelation attr({
      {1, {{100.0, 0.4}, {70.0, 0.6}}},
      {2, {{92.0, 0.6}, {80.0, 0.4}}},
      {3, {{85.0, 1.0}}},
  });
  PrintRanked("Attribute-level top-3 by expected rank (expect t2, t3, t1):",
              urank::AttrExpectedRankTopK(attr, 3));

  // ---- Tuple-level model: fixed scores, existence probabilities, and an
  // exclusion rule saying t2 and t4 never co-occur (paper Fig. 4).
  urank::TupleRelation tuples(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});
  PrintRanked("\nTuple-level top-4 by expected rank (expect t3, t1, t2, t4):",
              urank::TupleExpectedRankTopK(tuples, 4));

  // ---- The same query under the median rank: a more outlier-robust
  // statistic of the same rank distribution (paper Section 7).
  PrintRanked("\nTuple-level top-4 by median rank (expect t2, t3, t1, t4):",
              urank::TupleQuantileRankTopK(tuples, 4, /*phi=*/0.5));

  // ---- Pruned evaluation: same answer, fewer tuple accesses.
  const urank::TuplePruneResult pruned =
      urank::TupleExpectedRankTopKPrune(tuples, 2);
  std::printf("\nT-ERank-Prune touched %d of %d tuples for the top-2.\n",
              pruned.accessed, tuples.size());
  return 0;
}
