// Data integration / record matching: tuple-level uncertainty with
// exclusion rules (the paper's motivating application for that model).
//
// Two catalogues of the same product domain are merged. Each candidate
// match carries a relevance score and a matcher confidence (existence
// probability). Alternative matches for the same source record are
// mutually exclusive — exactly an x-relation. We ask for the k best
// products across the merged, uncertain catalogue.
//
//   $ ./data_integration

#include <cstdio>
#include <vector>

#include "core/expected_rank_tuple.h"  // urank-lint: allow(engine-api)
#include "core/quantile_rank.h"  // urank-lint: allow(engine-api)
#include "core/semantics/global_topk.h"  // urank-lint: allow(engine-api)
#include "core/semantics/u_topk.h"  // urank-lint: allow(engine-api)
#include "gen/tuple_gen.h"
#include "model/tuple_model.h"
#include "util/rng.h"

namespace {

// Builds the merged catalogue: `records` source records, each producing
// 1-3 alternative matches whose confidences sum to at most 1.
urank::TupleRelation BuildMergedCatalogue(int records, urank::Rng& rng) {
  std::vector<urank::TLTuple> tuples;
  std::vector<std::vector<int>> rules;
  int next_id = 0;
  for (int r = 0; r < records; ++r) {
    const int alternatives = static_cast<int>(rng.UniformInt(1, 3));
    std::vector<double> conf =
        rng.RandomSimplex(alternatives, rng.Uniform(0.6, 1.0));
    const double base_score = rng.Uniform(0.0, 100.0);
    std::vector<int> rule;
    for (int a = 0; a < alternatives; ++a) {
      // Alternatives score similarly but not identically.
      tuples.push_back({next_id, base_score + rng.Uniform(-5.0, 5.0),
                        conf[static_cast<size_t>(a)]});
      rule.push_back(next_id);
      ++next_id;
    }
    rules.push_back(std::move(rule));
  }
  return urank::TupleRelation(std::move(tuples), std::move(rules));
}

}  // namespace

int main() {
  urank::Rng rng(7);
  const int kRecords = 400;
  const int k = 8;
  urank::TupleRelation catalogue = BuildMergedCatalogue(kRecords, rng);

  std::printf("Merged catalogue: %d candidate tuples from %d records "
              "(%d exclusion rules), E[|W|] = %.1f\n\n",
              catalogue.size(), kRecords, catalogue.num_rules(),
              catalogue.ExpectedWorldSize());

  std::printf("Top-%d products by expected rank:\n", k);
  for (const auto& rt : urank::TupleExpectedRankTopK(catalogue, k)) {
    const int idx = rt.id;  // ids are dense in this example
    std::printf("  match %4d  score %6.2f  conf %.2f  r = %.2f\n", rt.id,
                catalogue.tuple(idx).score, catalogue.tuple(idx).prob,
                rt.statistic);
  }

  std::printf("\nTop-%d by median rank:\n", k);
  for (const auto& rt : urank::TupleQuantileRankTopK(catalogue, k, 0.5)) {
    std::printf("  match %4d  median rank = %.0f\n", rt.id, rt.statistic);
  }

  std::printf("\nGlobal-Topk (by top-%d membership probability):\n", k);
  for (int id : urank::TupleGlobalTopK(catalogue, k)) {
    std::printf("  match %4d\n", id);
  }

  // The pruned algorithm reads matches in score order and stops early —
  // the access pattern a disk- or network-resident catalogue wants.
  const urank::TuplePruneResult pruned =
      urank::TupleExpectedRankTopKPrune(catalogue, k);
  std::printf(
      "\nT-ERank-Prune touched %d of %d matches (answer is exact).\n",
      pruned.accessed, catalogue.size());
  return 0;
}
