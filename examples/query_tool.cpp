// Command-line ranking-query tool over relations stored in the library's
// CSV formats — the "downstream user" workflow: persist an uncertain
// relation, prepare it once with the QueryEngine, query it under any
// semantics. Invalid query parameters are reported as recoverable statuses
// (exit code 2) instead of aborting the process.
//
//   $ ./query_tool <attr|tuple> <file.csv> <semantics> <k> [phi|threshold]
//
// semantics: expected-rank | median-rank | quantile-rank | u-topk |
//            u-kranks | pt-k | global-topk | expected-score
//
// Run with no arguments for a self-contained demo: it writes the paper's
// Fig. 4 relation to a temporary file, then runs a batch of queries
// against one prepared engine.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/engine/query_engine.h"
#include "io/csv.h"

namespace {

void PrintAnswer(const urank::RankingAnswer& answer) {
  for (size_t pos = 0; pos < answer.ids.size(); ++pos) {
    if (answer.ids[pos] < 0) {
      std::printf("  #%zu: (no tuple can occupy this rank)\n", pos + 1);
    } else if (pos < answer.statistics.size()) {
      std::printf("  #%zu: tuple %d (statistic %.4f)\n", pos + 1,
                  answer.ids[pos], answer.statistics[pos]);
    } else {
      std::printf("  #%zu: tuple %d\n", pos + 1, answer.ids[pos]);
    }
  }
  if (answer.ids.empty()) std::printf("  (empty answer)\n");
}

// Prints the result, or the recoverable status for invalid parameters.
// Returns the process exit code.
int Report(const urank::QueryResult& result,
           const urank::RankingQueryOptions& q) {
  if (!result.status.ok()) {
    std::fprintf(stderr, "query rejected (%s): %s\n",
                 urank::ToString(result.status.code),
                 result.status.message.c_str());
    return 2;
  }
  std::printf("top-%d under %s (%.3f ms%s):\n", q.k, ToString(q.semantics),
              result.stats.wall_ms,
              result.stats.reused_cache ? ", served from cache" : "");
  PrintAnswer(result.answer);
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <attr|tuple> <file.csv> <semantics> <k> "
               "[phi|threshold]\n",
               argv0);
  return 2;
}

int Demo() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "urank_demo_fig4.csv")
          .string();
  urank::TupleRelation fig4(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});
  std::string error;
  if (!urank::SaveTupleRelation(fig4, path, &error)) {
    std::fprintf(stderr, "demo save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("Wrote the paper's Fig. 4 relation to %s\n", path.c_str());
  urank::TupleRelation loaded;
  if (!urank::LoadTupleRelation(path, &loaded, &error)) {
    std::fprintf(stderr, "demo load failed: %s\n", error.c_str());
    return 1;
  }

  // Prepare once, query many: the engine owns the shared sort orders and
  // statistic cache, and RunBatch fans the requests out over a worker pool.
  const urank::QueryEngine engine(loaded);
  std::vector<urank::QueryRequest> batch;
  for (urank::RankingSemantics semantics :
       {urank::RankingSemantics::kExpectedRank,
        urank::RankingSemantics::kMedianRank,
        urank::RankingSemantics::kGlobalTopk}) {
    urank::QueryRequest request;
    request.options.semantics = semantics;
    request.options.k = 3;
    batch.push_back(request);
  }
  const std::vector<urank::QueryResult> results = engine.RunBatch(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("\ntop-3 under %s:\n",
                ToString(batch[i].options.semantics));
    PrintAnswer(results[i].answer);
  }
  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();
  if (argc < 5) return Usage(argv[0]);
  const std::string model = argv[1];
  const std::string path = argv[2];
  urank::QueryRequest request;
  // The library's wire-name parser accepts exactly the names in the usage
  // string (the same ones urankd speaks).
  if (!urank::FromString(argv[3], &request.options.semantics)) {
    std::fprintf(stderr, "unknown semantics '%s'\n", argv[3]);
    return 2;
  }
  request.options.k = std::atoi(argv[4]);
  if (argc >= 6) {
    const double extra = std::atof(argv[5]);
    request.options.phi = extra;
    request.options.threshold = extra;
  }

  std::string error;
  if (model == "attr") {
    urank::AttrRelation rel;
    if (!urank::LoadAttrRelation(path, &rel, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const urank::QueryEngine engine(std::move(rel));
    return Report(engine.Run(request), request.options);
  }
  if (model == "tuple") {
    urank::TupleRelation rel;
    if (!urank::LoadTupleRelation(path, &rel, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const urank::QueryEngine engine(std::move(rel));
    return Report(engine.Run(request), request.options);
  }
  return Usage(argv[0]);
}
