// Command-line ranking-query tool over relations stored in the library's
// CSV formats — the "downstream user" workflow: persist an uncertain
// relation, query it under any semantics.
//
//   $ ./query_tool <attr|tuple> <file.csv> <semantics> <k> [phi|threshold]
//
// semantics: expected-rank | median-rank | quantile-rank | u-topk |
//            u-kranks | pt-k | global-topk | expected-score
//
// Run with no arguments for a self-contained demo: it writes the paper's
// Fig. 4 relation to a temporary file, then queries it.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/query.h"
#include "io/csv.h"

namespace {

bool ParseSemantics(const std::string& name,
                    urank::RankingSemantics* semantics) {
  using urank::RankingSemantics;
  const struct {
    const char* name;
    RankingSemantics value;
  } table[] = {
      {"expected-rank", RankingSemantics::kExpectedRank},
      {"median-rank", RankingSemantics::kMedianRank},
      {"quantile-rank", RankingSemantics::kQuantileRank},
      {"u-topk", RankingSemantics::kUTopk},
      {"u-kranks", RankingSemantics::kUKRanks},
      {"pt-k", RankingSemantics::kPTk},
      {"global-topk", RankingSemantics::kGlobalTopk},
      {"expected-score", RankingSemantics::kExpectedScore},
  };
  for (const auto& entry : table) {
    if (name == entry.name) {
      *semantics = entry.value;
      return true;
    }
  }
  return false;
}

void PrintAnswer(const urank::RankingAnswer& answer) {
  for (size_t pos = 0; pos < answer.ids.size(); ++pos) {
    if (answer.ids[pos] < 0) {
      std::printf("  #%zu: (no tuple can occupy this rank)\n", pos + 1);
    } else if (pos < answer.statistics.size()) {
      std::printf("  #%zu: tuple %d (statistic %.4f)\n", pos + 1,
                  answer.ids[pos], answer.statistics[pos]);
    } else {
      std::printf("  #%zu: tuple %d\n", pos + 1, answer.ids[pos]);
    }
  }
  if (answer.ids.empty()) std::printf("  (empty answer)\n");
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <attr|tuple> <file.csv> <semantics> <k> "
               "[phi|threshold]\n",
               argv0);
  return 2;
}

int Demo() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "urank_demo_fig4.csv")
          .string();
  urank::TupleRelation fig4(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});
  std::string error;
  if (!urank::SaveTupleRelation(fig4, path, &error)) {
    std::fprintf(stderr, "demo save failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("Wrote the paper's Fig. 4 relation to %s\n", path.c_str());
  urank::TupleRelation loaded;
  if (!urank::LoadTupleRelation(path, &loaded, &error)) {
    std::fprintf(stderr, "demo load failed: %s\n", error.c_str());
    return 1;
  }
  for (urank::RankingSemantics semantics :
       {urank::RankingSemantics::kExpectedRank,
        urank::RankingSemantics::kMedianRank,
        urank::RankingSemantics::kGlobalTopk}) {
    urank::RankingQueryOptions options;
    options.semantics = semantics;
    options.k = 3;
    std::printf("\ntop-3 under %s:\n", urank::ToString(semantics));
    PrintAnswer(urank::RunRankingQuery(loaded, options));
  }
  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();
  if (argc < 5) return Usage(argv[0]);
  const std::string model = argv[1];
  const std::string path = argv[2];
  urank::RankingQueryOptions options;
  if (!ParseSemantics(argv[3], &options.semantics)) {
    std::fprintf(stderr, "unknown semantics '%s'\n", argv[3]);
    return 2;
  }
  options.k = std::atoi(argv[4]);
  if (options.k < 1) {
    std::fprintf(stderr, "k must be >= 1\n");
    return 2;
  }
  if (argc >= 6) {
    const double extra = std::atof(argv[5]);
    options.phi = extra;
    options.threshold = extra;
  }

  std::string error;
  urank::RankingAnswer answer;
  if (model == "attr") {
    urank::AttrRelation rel;
    if (!urank::LoadAttrRelation(path, &rel, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    answer = urank::RunRankingQuery(rel, options);
  } else if (model == "tuple") {
    urank::TupleRelation rel;
    if (!urank::LoadTupleRelation(path, &rel, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    answer = urank::RunRankingQuery(rel, options);
  } else {
    return Usage(argv[0]);
  }
  std::printf("top-%d under %s:\n", options.k, urank::ToString(options.semantics));
  PrintAnswer(answer);
  return 0;
}
