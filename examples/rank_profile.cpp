// Rank-distribution profiling: Section 7 argues the rank distribution's
// statistics are "of independent interest" beyond producing a top-k. This
// example prints each tuple's full rank profile — expectation, spread,
// quartiles, mode — for the paper's Fig. 4 relation and for a generated
// catalogue, showing how tuples with similar expected ranks can have very
// different risk profiles.
//
//   $ ./rank_profile

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/quantile_rank.h"  // urank-lint: allow(engine-api)
#include "core/rank_distribution_tuple.h"
#include "gen/tuple_gen.h"
#include "model/tuple_model.h"
#include "util/table.h"

namespace {

void PrintProfiles(const char* title, const urank::TupleRelation& rel,
                   int limit) {
  urank::Table table(title, {"tuple", "score", "p", "E[rank]", "stddev",
                             "q25", "median", "q75", "mode"});
  int rows = 0;
  const auto dists = urank::TupleRankDistributions(rel);
  // Order rows by expected rank so the table reads like a ranking.
  std::vector<std::pair<double, int>> order;
  for (int i = 0; i < rel.size(); ++i) {
    const urank::RankDistributionSummary s =
        urank::SummarizeRankDistribution(dists[static_cast<size_t>(i)]);
    order.emplace_back(s.mean, i);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [mean, i] : order) {
    if (rows++ >= limit) break;
    const urank::RankDistributionSummary s =
        urank::SummarizeRankDistribution(dists[static_cast<size_t>(i)]);
    std::string label = "t";
    label.append(std::to_string(rel.tuple(i).id));
    table.AddRow({std::move(label),
                  urank::FormatDouble(rel.tuple(i).score, 1),
                  urank::FormatDouble(rel.tuple(i).prob, 2),
                  urank::FormatDouble(s.mean, 2),
                  urank::FormatDouble(s.stddev, 2), urank::FormatInt(s.q25),
                  urank::FormatInt(s.median), urank::FormatInt(s.q75),
                  urank::FormatInt(s.mode)});
  }
  table.Print();
}

}  // namespace

int main() {
  urank::TupleRelation fig4(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});
  PrintProfiles("rank profiles — paper Fig. 4", fig4, 4);
  std::printf(
      "\nNote t1: mean rank 1.2 but a bimodal distribution (rank 0 with\n"
      "probability 0.4, rank 2 with 0.6) — the median calls it rank 2\n"
      "while the expectation places it second. This is exactly why the\n"
      "paper studies both statistics.\n\n");

  urank::TupleGenConfig config;
  config.num_tuples = 2000;
  config.multi_rule_fraction = 0.4;
  config.seed = 99;
  urank::TupleRelation catalogue = urank::GenerateTupleRelation(config);
  PrintProfiles("rank profiles — generated catalogue (top 10 by E[rank])",
                catalogue, 10);
  return 0;
}
