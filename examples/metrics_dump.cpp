// metrics_dump: end-to-end tour of the observability layer.
//
// Runs a mixed-semantics QueryEngine batch with intra-query parallelism
// under an active trace session, then emits every exporter the library
// provides:
//   1. the Prometheus text page (stdout) — what a scrape endpoint serves,
//   2. the compact JSON snapshot (stdout) — what tools/bench_runner.py
//      archives next to bench numbers,
//   3. a Chrome trace_event document (metrics_trace.json, or argv[1]) —
//      open it in chrome://tracing or https://ui.perfetto.dev to see the
//      engine spans with per-chunk kernel work fanning out across the
//      worker-thread lanes.

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/engine/trace.h"
#include "core/query.h"
#include "gen/tuple_gen.h"
#include "util/metrics.h"

namespace {

// Per-request intra-query parallelism: four threads per DP kernel, on top
// of the four-way batch fan-out below.
std::vector<urank::QueryRequest> MakeBatch() {
  using urank::QueryRequest;
  using urank::RankingSemantics;
  std::vector<QueryRequest> batch;
  const RankingSemantics mix[] = {
      RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
      RankingSemantics::kQuantileRank, RankingSemantics::kPTk,
      RankingSemantics::kGlobalTopk,   RankingSemantics::kUKRanks,
  };
  for (RankingSemantics semantics : mix) {
    QueryRequest request;
    request.options.semantics = semantics;
    request.options.k = 10;
    request.options.phi = 0.75;
    request.options.threshold = 0.1;
    request.parallelism.threads = 4;
    batch.push_back(request);
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "metrics_trace.json";

  // Record everything this process does from here on.
  urank::trace::Recorder& recorder = urank::trace::Recorder::Global();
  recorder.Start();

  urank::TupleGenConfig config;
  config.num_tuples = 30000;  // several chunks per DP sweep
  config.seed = 41;
  const urank::TupleRelation rel = urank::GenerateTupleRelation(config);

  const auto prepared = urank::QueryEngine::Prepare(rel);
  const urank::QueryEngine engine(prepared);

  const std::vector<urank::QueryResult> results =
      engine.RunBatch(MakeBatch(), 4);
  for (const urank::QueryResult& r : results) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status.message.c_str());
      return 1;
    }
  }

  recorder.Stop();

  std::printf("=== Prometheus text page ===\n%s\n",
              urank::metrics::Registry::Global().RenderPrometheus().c_str());
  std::printf("=== JSON snapshot ===\n%s\n\n",
              urank::metrics::Registry::Global().RenderJsonSnapshot().c_str());

  const std::string trace = recorder.ChromeTraceJson();
  std::FILE* f = std::fopen(trace_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
    return 1;
  }
  std::fwrite(trace.data(), 1, trace.size(), f);
  std::fclose(f);
  std::printf(
      "=== Chrome trace ===\nwrote %s (%zu events recorded, %llu dropped) — "
      "load it in chrome://tracing or https://ui.perfetto.dev\n",
      trace_path.c_str(), recorder.Events().size(),
      static_cast<unsigned long long>(recorder.dropped()));
  return 0;
}
