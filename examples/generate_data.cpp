// Workload-generation tool: writes synthetic uncertain relations in the
// library's CSV formats — the companion to query_tool for building
// end-to-end pipelines without writing C++.
//
//   $ ./generate_data attr  <N> <out.csv> [seed] [pdf_size] [uniform|normal|zipf]
//   $ ./generate_data tuple <N> <out.csv> [seed] [independent|positive|negative]
//
// Run with no arguments for a demo that generates both kinds into /tmp
// and prints how to query them.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "io/csv.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s attr  <N> <out.csv> [seed] [pdf_size] "
      "[uniform|normal|zipf]\n"
      "       %s tuple <N> <out.csv> [seed] "
      "[independent|positive|negative]\n",
      argv0, argv0);
  return 2;
}

bool ParseScoreDist(const std::string& name, urank::ScoreDistribution* out) {
  if (name == "uniform") *out = urank::ScoreDistribution::kUniform;
  else if (name == "normal") *out = urank::ScoreDistribution::kNormal;
  else if (name == "zipf") *out = urank::ScoreDistribution::kZipf;
  else return false;
  return true;
}

bool ParseCorrelation(const std::string& name, urank::Correlation* out) {
  if (name == "independent") *out = urank::Correlation::kIndependent;
  else if (name == "positive") *out = urank::Correlation::kPositive;
  else if (name == "negative") *out = urank::Correlation::kNegative;
  else return false;
  return true;
}

int GenerateAttr(int n, const std::string& path, uint64_t seed, int pdf_size,
                 urank::ScoreDistribution dist) {
  urank::AttrGenConfig config;
  config.num_tuples = n;
  config.pdf_size = pdf_size;
  config.score_dist = dist;
  config.seed = seed;
  std::string error;
  if (!urank::SaveAttrRelation(urank::GenerateAttrRelation(config), path,
                               &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %d attribute-level tuples (s=%d, %s scores) to %s\n", n,
              pdf_size, ToString(dist), path.c_str());
  return 0;
}

int GenerateTuple(int n, const std::string& path, uint64_t seed,
                  urank::Correlation correlation) {
  urank::TupleGenConfig config;
  config.num_tuples = n;
  config.correlation = correlation;
  config.seed = seed;
  std::string error;
  if (!urank::SaveTupleRelation(urank::GenerateTupleRelation(config), path,
                                &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %d tuple-level tuples (%s score/probability "
              "correlation) to %s\n",
              n, ToString(correlation), path.c_str());
  return 0;
}

int Demo() {
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string attr_path = (tmp / "urank_demo_attr.csv").string();
  const std::string tuple_path = (tmp / "urank_demo_tuple.csv").string();
  if (GenerateAttr(1000, attr_path, 1, 5,
                   urank::ScoreDistribution::kUniform) != 0) {
    return 1;
  }
  if (GenerateTuple(1000, tuple_path, 1,
                    urank::Correlation::kIndependent) != 0) {
    return 1;
  }
  std::printf(
      "\ntry:\n  ./query_tool attr  %s expected-rank 10\n"
      "  ./query_tool tuple %s median-rank 10\n",
      attr_path.c_str(), tuple_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();
  if (argc < 4) return Usage(argv[0]);
  const std::string kind = argv[1];
  const int n = std::atoi(argv[2]);
  if (n < 0) {
    std::fprintf(stderr, "N must be >= 0\n");
    return 2;
  }
  const std::string path = argv[3];
  const uint64_t seed =
      argc >= 5 ? static_cast<uint64_t>(std::atoll(argv[4])) : 1;
  if (kind == "attr") {
    const int pdf_size = argc >= 6 ? std::atoi(argv[5]) : 5;
    urank::ScoreDistribution dist = urank::ScoreDistribution::kUniform;
    if (argc >= 7 && !ParseScoreDist(argv[6], &dist)) return Usage(argv[0]);
    if (pdf_size < 1) {
      std::fprintf(stderr, "pdf_size must be >= 1\n");
      return 2;
    }
    return GenerateAttr(n, path, seed, pdf_size, dist);
  }
  if (kind == "tuple") {
    urank::Correlation correlation = urank::Correlation::kIndependent;
    if (argc >= 6 && !ParseCorrelation(argv[5], &correlation)) {
      return Usage(argv[0]);
    }
    return GenerateTuple(n, path, seed, correlation);
  }
  return Usage(argv[0]);
}
