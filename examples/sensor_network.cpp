// Sensor-network monitoring: attribute-level uncertainty on real-valued
// measurements (the paper's motivating application for that model).
//
// A field of temperature sensors each reports a small set of calibrated
// readings with confidence weights — a discrete pdf per sensor. The
// operator wants the k hottest sensors. Ranking by expected *score* is
// fooled by a faulty sensor that occasionally reports an absurd spike;
// ranking by expected/median rank is not.
//
//   $ ./sensor_network

#include <cstdio>

#include "core/expected_rank_attr.h"  // urank-lint: allow(engine-api)
#include "core/quantile_rank.h"  // urank-lint: allow(engine-api)
#include "core/semantics/expected_score.h"  // urank-lint: allow(engine-api)
#include "model/attr_model.h"
#include "util/rng.h"

namespace {

// Builds a sensor field: `n` healthy sensors with tight pdfs around their
// true temperature, plus one faulty sensor (id = n) whose pdf mixes a
// normal reading with a rare enormous spike.
urank::AttrRelation BuildSensorField(int n, urank::Rng& rng) {
  std::vector<urank::AttrTuple> sensors;
  for (int i = 0; i < n; ++i) {
    const double truth = rng.Uniform(15.0, 35.0);  // degrees C
    urank::AttrTuple s;
    s.id = i;
    // Three calibration points: low/centre/high, centre most likely.
    s.pdf = {{truth - 0.5, 0.25}, {truth, 0.5}, {truth + 0.5, 0.25}};
    sensors.push_back(std::move(s));
  }
  urank::AttrTuple faulty;
  faulty.id = n;
  faulty.pdf = {{20.0, 0.97}, {5000.0, 0.03}};  // rare bogus spike
  sensors.push_back(std::move(faulty));
  return urank::AttrRelation(std::move(sensors));
}

}  // namespace

int main() {
  urank::Rng rng(2026);
  const int kSensors = 200;
  const int k = 5;
  urank::AttrRelation field = BuildSensorField(kSensors, rng);

  std::printf("Sensor field: %d sensors (+1 faulty, id=%d)\n\n",
              kSensors, kSensors);

  const auto by_score = urank::AttrExpectedScoreTopK(field, k);
  std::printf("Top-%d by expected score (value-sensitive):\n", k);
  for (const auto& rt : by_score) {
    std::printf("  sensor %3d  E[temp] = %.2f C%s\n", rt.id, -rt.statistic,
                rt.id == kSensors ? "   <-- faulty sensor promoted!" : "");
  }

  const auto by_rank = urank::AttrExpectedRankTopK(field, k);
  std::printf("\nTop-%d by expected rank (value-invariant):\n", k);
  for (const auto& rt : by_rank) {
    std::printf("  sensor %3d  expected rank = %.2f%s\n", rt.id,
                rt.statistic,
                rt.id == kSensors ? "   <-- faulty sensor" : "");
  }

  const auto by_median = urank::AttrQuantileRankTopK(field, k, 0.5);
  std::printf("\nTop-%d by median rank (outlier-robust):\n", k);
  for (const auto& rt : by_median) {
    std::printf("  sensor %3d  median rank = %.0f\n", rt.id, rt.statistic);
  }

  // Pruned evaluation: sensors stream in expected-temperature order; the
  // Markov bounds stop the scan early.
  const urank::AttrPruneResult pruned =
      urank::AttrExpectedRankTopKPrune(field, k);
  std::printf(
      "\nA-ERank-Prune answered the top-%d after touching %d of %d "
      "sensors.\n",
      k, pruned.accessed, field.size());
  return 0;
}
